"""Reference-model check: the vectorised MaxLive equals naive counting.

``cluster_pressures`` is the hottest path in the package and uses a
difference-array trick over doubled modulo ranges; this test pins it to a
straightforward per-cycle counter on real scheduler outputs and on random
schedules.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.configs import four_cluster_config, two_cluster_config
from repro.core.bsa import BsaScheduler
from repro.core.lifetimes import _intervals, cluster_pressures
from repro.core.schedule import ModuloSchedule, ScheduledOp
from repro.ir.ddg import DependenceGraph
from repro.workloads.kernels import ALL_KERNELS


def naive_pressures(schedule):
    ii = schedule.ii
    counts = {c: [0] * ii for c in schedule.config.clusters()}
    for cluster, start, end in _intervals(schedule, None):
        for t in range(start, end):
            counts[cluster][t % ii] += 1
    return {c: (max(v) if v else 0) for c, v in counts.items()}


class TestAgainstSchedulerOutputs:
    def test_all_kernels_both_machines(self):
        for name, build in ALL_KERNELS.items():
            for cfg in (two_cluster_config(1, 1), four_cluster_config(1, 2)):
                sched = BsaScheduler(cfg).schedule(build())
                assert cluster_pressures(sched) == naive_pressures(sched), (
                    name,
                    cfg.name,
                )


@st.composite
def random_partial_schedule(draw):
    """A hand-rolled (not scheduler-produced) partial schedule."""
    n = draw(st.integers(min_value=1, max_value=10))
    g = DependenceGraph("rand")
    ids = [
        g.add_operation(draw(st.sampled_from(["fadd", "fmul", "load", "store"])))
        for _ in range(n)
    ]
    # random forward flow edges
    for dst in ids:
        for src in ids:
            if src < dst and g.operation(src).writes_register and draw(st.booleans()):
                g.add_dependence(src, dst, distance=draw(st.integers(0, 2)))
    cfg = two_cluster_config(1, draw(st.sampled_from([1, 2])))
    ii = draw(st.integers(min_value=1, max_value=12))
    sched = ModuloSchedule(g, cfg, ii)
    cycle = 0
    for node in ids:
        if draw(st.booleans()):
            continue  # leave some nodes unscheduled (partial schedules)
        cluster = draw(st.integers(0, 1))
        sched.place(ScheduledOp(node, cycle, cluster, 0))
        cycle += draw(st.integers(0, 5))
    return sched


class TestAgainstRandomSchedules:
    @given(sched=random_partial_schedule())
    @settings(
        max_examples=120,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_matches_naive(self, sched):
        assert cluster_pressures(sched) == naive_pressures(sched)
