"""Unit tests for the incremental MaxLive tracker (repro.core.pressure).

The end-to-end equivalence with ``cluster_pressures`` after every commit
is property-tested in test_property_schedulers.py; these tests cover the
pieces engines do not exercise: attaching to a non-empty schedule,
negative-cycle intervals, and probe non-mutation.
"""

from repro.arch.configs import two_cluster_config
from repro.core.comm import AddReader, CommPlan, NewTransfer
from repro.core.lifetimes import cluster_pressures
from repro.core.pressure import PressureTracker
from repro.core.schedule import Communication, ModuloSchedule, ScheduledOp
from repro.ir.ddg import DependenceGraph


def chain_graph(n=3, op="fadd"):
    g = DependenceGraph("chain")
    ids = [g.add_operation(op) for _ in range(n)]
    for a, b in zip(ids, ids[1:]):
        g.add_dependence(a, b)
    return g, ids


class TestRebuild:
    def test_attaches_to_populated_schedule(self):
        g, (a, b, c) = chain_graph()
        s = ModuloSchedule(g, two_cluster_config(1, 2), ii=6)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(b, 4, 0, 0))
        s.place(ScheduledOp(c, 11, 1, 0))
        s.add_comm(Communication(b, 0, 0, start_cycle=8, readers=frozenset({1})))
        tracker = PressureTracker(s)  # __init__ rebuilds from the state
        assert tracker.pressures() == cluster_pressures(s)

    def test_rebuild_with_negative_cycles(self):
        g, (a, b, c) = chain_graph()
        s = ModuloSchedule(g, two_cluster_config(1, 2), ii=5)
        s.place(ScheduledOp(a, -11, 0, 0))
        s.place(ScheduledOp(b, -7, 0, 0))
        s.place(ScheduledOp(c, -1, 1, 0))
        s.add_comm(Communication(b, 0, 0, start_cycle=-4, readers=frozenset({1})))
        tracker = PressureTracker(s)
        assert tracker.pressures() == cluster_pressures(s)


class TestProbe:
    def setup_schedule(self):
        g, (a, b, c) = chain_graph()
        s = ModuloSchedule(g, two_cluster_config(1, 2), ii=6)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(b, 4, 0, 0))
        return g, s, (a, b, c)

    def test_probe_equals_scratch_overlay(self):
        g, s, (a, b, c) = self.setup_schedule()
        tracker = PressureTracker(s)
        plan = CommPlan(
            new_transfers=[
                NewTransfer(producer=b, src_cluster=0, bus=0, start_cycle=8, reader=1)
            ],
            added_readers=[],
        )
        touched = tracker.probe(c, 1, 12, plan)
        # scratch overlay: place c and add the comm, recompute, undo
        s.ops[c] = ScheduledOp(c, 12, 1, -1)
        scratch = cluster_pressures(s, extra_comms=plan.pressure_comms())
        del s.ops[c]
        for cluster, pressure in touched.items():
            assert pressure == scratch[cluster]

    def test_probe_does_not_mutate(self):
        g, s, (a, b, c) = self.setup_schedule()
        tracker = PressureTracker(s)
        before = dict(tracker.pressures())
        plan = CommPlan(new_transfers=[], added_readers=[])
        tracker.probe(c, 0, 12, plan)
        assert c not in s.ops
        assert tracker.pressures() == before
        assert tracker.pressures() == cluster_pressures(s)

    def test_added_reader_probe(self):
        g, s, (a, b, c) = self.setup_schedule()
        comm = Communication(b, 0, 0, start_cycle=8, readers=frozenset())
        s.add_comm(comm)
        tracker = PressureTracker(s)
        plan = CommPlan(
            new_transfers=[], added_readers=[AddReader(existing=comm, reader=1)]
        )
        touched = tracker.probe(c, 1, 12, plan)
        s.ops[c] = ScheduledOp(c, 12, 1, -1)
        scratch = cluster_pressures(s, extra_comms=plan.pressure_comms())
        del s.ops[c]
        for cluster, pressure in touched.items():
            assert pressure == scratch[cluster]
