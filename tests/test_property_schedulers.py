"""Property-based end-to-end tests: random graphs x random machines.

Every schedule any scheduler produces must pass the independent verifier;
II must never be below MII; BSA on one cluster must match unified SMS.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.cluster import MachineConfig
from repro.arch.resources import BusSpec, FuSet
from repro.core.bsa import BsaScheduler
from repro.core.mii import mii
from repro.core.twophase import TwoPhaseScheduler
from repro.core.unified import UnifiedScheduler
from repro.core.verify import verify_schedule
from repro.errors import SchedulingError
from repro.ir.ddg import DependenceGraph
from repro.ir.unroll import unroll_graph

_OPS = ["iadd", "fadd", "fmul", "load", "store", "imul", "fsub"]


@st.composite
def loop_graph(draw):
    """A random, always-schedulable loop body."""
    n = draw(st.integers(min_value=2, max_value=14))
    g = DependenceGraph("prop")
    ids = []
    for i in range(n):
        ids.append(g.add_operation(draw(st.sampled_from(_OPS))))
    n_edges = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(n_edges):
        src = draw(st.sampled_from(ids))
        dst = draw(st.sampled_from(ids))
        if not g.operation(src).writes_register:
            continue
        if dst <= src:
            distance = draw(st.integers(min_value=1, max_value=2))
        else:
            distance = draw(st.integers(min_value=0, max_value=2))
        g.add_dependence(src, dst, distance=distance)
    return g


@st.composite
def clustered_machine(draw):
    n_clusters = draw(st.sampled_from([2, 4]))
    fus = FuSet(
        draw(st.integers(min_value=1, max_value=2)),
        draw(st.integers(min_value=1, max_value=2)),
        draw(st.integers(min_value=1, max_value=2)),
    )
    buses = BusSpec(
        draw(st.integers(min_value=1, max_value=2)),
        draw(st.sampled_from([1, 2, 4])),
    )
    regs = draw(st.sampled_from([16, 32]))
    return MachineConfig("prop-machine", n_clusters, fus, regs, buses)


COMMON = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _schedule_or_documented_failure(scheduler, g):
    """Random (graph, machine) combos can be genuinely unschedulable
    without spill code (register-pressure bound); the property under test
    is that schedulers either produce a verifiable schedule or fail with
    the documented SchedulingError — never crash or emit a bad schedule."""
    try:
        return scheduler.schedule(g)
    except SchedulingError as err:
        assert err.ii_tried is not None
        return None


class TestSchedulerProperties:
    @given(g=loop_graph(), cfg=clustered_machine())
    @settings(**COMMON)
    def test_bsa_schedules_verify(self, g, cfg):
        sched = _schedule_or_documented_failure(BsaScheduler(cfg), g)
        if sched is not None:
            verify_schedule(sched)

    @given(g=loop_graph(), cfg=clustered_machine())
    @settings(**COMMON)
    def test_twophase_schedules_verify(self, g, cfg):
        sched = _schedule_or_documented_failure(TwoPhaseScheduler(cfg), g)
        if sched is not None:
            verify_schedule(sched)

    @given(g=loop_graph())
    @settings(**COMMON)
    def test_unified_schedules_verify(self, g):
        from repro.arch.configs import unified_config

        cfg = unified_config()
        sched = UnifiedScheduler(cfg).schedule(g)
        verify_schedule(sched)

    @given(g=loop_graph(), cfg=clustered_machine())
    @settings(**COMMON)
    def test_ii_at_least_mii(self, g, cfg):
        sched = _schedule_or_documented_failure(BsaScheduler(cfg), g)
        if sched is not None:
            assert sched.ii >= mii(g, cfg)

    @given(g=loop_graph())
    @settings(**COMMON)
    def test_unified_stays_near_mii(self, g):
        """SMS on the 12-wide unified machine stays *near* MII.

        The old form asserted ``ii <= mii + 1`` — false: SMS is a
        heuristic, and ~0.05% of random carried-dependence webs (even
        acyclic ones) legitimately need a few extra II bumps, so the
        strict bound flaked whenever hypothesis found one.  Empirically
        the slack never exceeded 4 over 30k samples; assert a bound that
        still catches wholesale regressions (e.g. a broken candidate
        window scan sends II to the budget ceiling), and leave exact
        near-MII claims to the pinned-kernel test below.
        """
        from repro.arch.configs import unified_config

        cfg = unified_config()
        sched = UnifiedScheduler(cfg).schedule(g)
        assert sched.ii <= mii(g, cfg) + 8

    def test_unified_hits_mii_on_pinned_kernels(self):
        """The deterministic near-MII quality claim, on known kernels."""
        from repro.arch.configs import unified_config
        from repro.workloads.kernels import (
            daxpy,
            dot_product,
            fir_filter,
            first_order_recurrence,
            hydro_fragment,
            stencil5,
            vector_add,
        )

        cfg = unified_config()
        for factory in (
            daxpy,
            vector_add,
            dot_product,
            first_order_recurrence,
            fir_filter,
            stencil5,
            hydro_fragment,
        ):
            g = factory()
            sched = UnifiedScheduler(cfg).schedule(g)
            assert sched.ii <= mii(g, cfg) + 1, g.name

    @given(g=loop_graph(), factor=st.sampled_from([2, 4]))
    @settings(**COMMON)
    def test_unrolled_graphs_schedule_and_verify(self, g, factor):
        """Unrolled random graphs either schedule (and verify) or fail
        with the documented SchedulingError — never crash, hang or emit an
        invalid schedule.  (Dense random carried-dependence webs can be
        genuinely unschedulable without spill code.)"""
        from repro.arch.configs import four_cluster_config
        from repro.core.mii import mii
        from repro.errors import SchedulingError

        cfg = four_cluster_config(1, 1)
        unrolled = unroll_graph(g, factor)
        budget = mii(unrolled, cfg) + 40
        try:
            sched = BsaScheduler(cfg, max_ii=budget).schedule(unrolled)
        except SchedulingError as err:
            assert err.ii_tried is not None
            return
        verify_schedule(sched)


class TestIncrementalPressure:
    """The incremental tracker must equal a from-scratch recomputation
    after every commit — the oracle that lets the placement engine probe
    deltas instead of rebuilding every interval."""

    @staticmethod
    def _schedule_with_checks(scheduler, g):
        from unittest import mock

        from repro.core.engine import PlacementEngine
        from repro.core.lifetimes import cluster_pressures

        commits = {"n": 0}
        original = PlacementEngine.commit

        def checking(self, placement):
            original(self, placement)
            commits["n"] += 1
            assert self._pressure.pressures() == cluster_pressures(self.schedule)

        with mock.patch.object(PlacementEngine, "commit", checking):
            sched = _schedule_or_documented_failure(scheduler, g)
        return sched, commits["n"]

    @given(g=loop_graph(), cfg=clustered_machine())
    @settings(**COMMON)
    def test_bsa_tracker_matches_scratch(self, g, cfg):
        sched, commits = self._schedule_with_checks(BsaScheduler(cfg), g)
        if sched is not None:
            assert commits >= len(g)  # every placement was cross-checked

    @given(g=loop_graph(), cfg=clustered_machine())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_twophase_tracker_matches_scratch(self, g, cfg):
        self._schedule_with_checks(TwoPhaseScheduler(cfg), g)

    @given(g=loop_graph(), cfg=clustered_machine(), factor=st.sampled_from([2, 3]))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    def test_unrolled_tracker_matches_scratch(self, g, cfg, factor):
        from repro.core.mii import mii as compute_mii

        unrolled = unroll_graph(g, factor)
        budget = compute_mii(unrolled, cfg) + 40
        self._schedule_with_checks(BsaScheduler(cfg, max_ii=budget), unrolled)

    @given(g=loop_graph())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_unified_tracker_matches_scratch(self, g):
        from repro.arch.configs import unified_config

        self._schedule_with_checks(UnifiedScheduler(unified_config()), g)


class TestJoinProfit:
    @given(g=loop_graph(), data=st.data())
    @settings(**COMMON)
    def test_join_profit_equals_full_recount(self, g, data):
        """O(degree) profit == the paper's O(assignment) recount."""
        from repro.core.bsa import cluster_out_edges, join_profit, out_edges_if_joined

        nodes = g.node_ids
        n_clusters = 4
        assignment = {}
        for node in nodes:
            c = data.draw(st.integers(min_value=-1, max_value=n_clusters - 1))
            if c >= 0:
                assignment[node] = c
        for node in nodes:
            if node in assignment:
                continue
            for cluster in range(n_clusters):
                before = cluster_out_edges(g, assignment, cluster)
                after = out_edges_if_joined(g, assignment, cluster, node)
                assert join_profit(g, assignment, cluster, node) == before - after


class TestSchedulerDeterminism:
    @given(g=loop_graph(), cfg=clustered_machine())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_bsa_deterministic(self, g, cfg):
        s1 = _schedule_or_documented_failure(BsaScheduler(cfg), g)
        s2 = _schedule_or_documented_failure(BsaScheduler(cfg), g)
        assert (s1 is None) == (s2 is None)
        if s1 is None:
            return
        assert s1.ii == s2.ii
        assert {n: (o.cycle, o.cluster) for n, o in s1.ops.items()} == {
            n: (o.cycle, o.cluster) for n, o in s2.ops.items()
        }
