"""Tests for the workload plugin registry (repro.workloads.registry).

Covers registration semantics (duplicate and alias collisions are
register-time errors), error ergonomics (:class:`WorkloadError` is a
``KeyError`` with did-you-mean suggestions), parametrized instances
(distinct cache identity per instance), plugin discovery via
``REPRO_VLIW_WORKLOAD_PATH``, and the ``workloads`` CLI verb staying in
lock-step with the registry.
"""

from __future__ import annotations

import pytest

from repro.arch.configs import unified_config
from repro.cli import main
from repro.core.selective import UnrollPolicy
from repro.errors import WorkloadError
from repro.ir.loop import Loop
from repro.runner import ResultCache, execute_points, scenario_for
from repro.workloads import (
    WORKLOAD_PATH_ENV,
    kernel_table,
    load_plugins,
    register_workload,
    resolve_kernel,
    resolve_workload,
    unregister_workload,
    workload,
    workload_table,
    workloads,
)
from repro.workloads.kernels import ALL_KERNELS, daxpy


@pytest.fixture()
def scratch_workload():
    """Register a throwaway workload; always unregister on the way out."""
    names = []

    def make(name, **kwargs):
        names.append(name)
        return register_workload(name, **kwargs)(daxpy)

    yield make
    for name in names:
        try:
            unregister_workload(name)
        except WorkloadError:
            pass


class TestRegistrationSemantics:
    def test_duplicate_name_rejected_at_register_time(self, scratch_workload):
        scratch_workload("zz-dup")
        with pytest.raises(WorkloadError, match="zz-dup"):
            register_workload("zz-dup")(daxpy)

    def test_name_colliding_with_catalogue_rejected(self):
        with pytest.raises(WorkloadError, match="daxpy"):
            register_workload("daxpy")(daxpy)

    def test_alias_collision_rejected(self, scratch_workload):
        with pytest.raises(WorkloadError, match="vector_add"):
            scratch_workload("zz-alias", aliases=("vector_add",))

    def test_alias_colliding_with_name_rejected(self, scratch_workload):
        with pytest.raises(WorkloadError, match="dot"):
            scratch_workload("zz-alias2", aliases=("dot",))

    def test_unregister_removes_name_and_aliases(self, scratch_workload):
        scratch_workload("zz-tmp", aliases=("zz-tmp-alias",))
        assert workload("zz-tmp-alias").name == "zz-tmp"
        unregister_workload("zz-tmp")
        with pytest.raises(WorkloadError):
            workload("zz-tmp")
        with pytest.raises(WorkloadError):
            workload("zz-tmp-alias")

    def test_registry_iteration_matches_kernel_shims(self):
        by_tag = {spec.name for spec in workloads(tag="kernel", discover=False)}
        assert by_tag == set(ALL_KERNELS)
        assert {row["kernel"] for row in kernel_table()} <= {
            spec.name for spec in workloads(discover=False)
        }


class TestErrorErgonomics:
    def test_workload_error_is_a_keyerror_with_suggestion(self):
        with pytest.raises(KeyError):
            workload("daxpi")
        with pytest.raises(WorkloadError) as err:
            workload("daxpi")
        assert err.value.suggestion == "daxpy"
        assert "did you mean 'daxpy'" in str(err.value)

    def test_resolve_kernel_shim_keeps_wording_and_suggestion(self):
        with pytest.raises(WorkloadError, match="unknown kernel") as err:
            resolve_kernel("stencil33")
        assert err.value.suggestion in ("stencil3", "stencil5")

    def test_kind_mismatch_is_reported(self):
        with pytest.raises(WorkloadError, match="program workload"):
            resolve_workload("tomcatv", kind="graph")

    def test_unknown_parameter_lists_declared_ones(self):
        with pytest.raises(WorkloadError, match="taps"):
            resolve_workload("fir(width=8)")


class TestParametrizedInstances:
    def test_canonical_instance_name_and_graph(self):
        name, factory = resolve_workload("fir(taps=8)")
        assert name == "fir(taps=8)"
        graph = factory()
        assert graph.name == "fir8"

    def test_instances_hash_distinctly_in_result_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", code_version="test-registry")
        config = unified_config()
        points = []
        for spec_text in ("fir(taps=4)", "fir(taps=8)"):
            _name, factory = resolve_workload(spec_text)
            loop = Loop(graph=factory(), trip_count=100)
            point = scenario_for(loop, config, "bsa", UnrollPolicy.NONE)
            points.append((point, loop))
        keys = {point.canonical() for point, _loop in points}
        assert len(keys) == 2, "fir(taps=4) and fir(taps=8) must not collide"
        results = execute_points(
            [(point.canonical(), (point, loop)) for point, loop in points],
            jobs=1,
        )
        for key, result in results.items():
            point = next(p for p, _l in points if p.canonical() == key)
            cache.put(point, result)
        for point, _loop in points:
            assert cache.get(point) is not None

    def test_instance_equals_direct_factory_call(self):
        from repro.workloads.kernels import fir_filter

        _name, factory = resolve_workload("fir(taps=6)")
        from repro.runner.scenario import graph_content_hash

        assert graph_content_hash(factory()) == graph_content_hash(
            fir_filter(taps=6)
        )


class TestPluginDiscovery:
    def test_workload_path_plugins_are_loaded(self, tmp_path, monkeypatch):
        plugin = tmp_path / "zz_plugin.py"
        plugin.write_text(
            "from repro.ir.builder import LoopBuilder\n"
            "from repro.workloads import register_workload\n"
            "@register_workload('zz-plugin-kernel', tags=('plugin-test',))\n"
            "def zz_plugin_kernel():\n"
            "    b = LoopBuilder('zz-plugin')\n"
            "    x = b.op('load', tag='a[i]')\n"
            "    b.op('store', x, tag='b[i]')\n"
            "    return b.build()\n"
        )
        monkeypatch.setenv(WORKLOAD_PATH_ENV, str(plugin))
        try:
            load_plugins(refresh=True)
            spec = workload("zz-plugin-kernel")
            assert "plugin-test" in spec.tags
            assert len(spec.factory()) == 2
        finally:
            try:
                unregister_workload("zz-plugin-kernel")
            except WorkloadError:
                pass

    def test_broken_plugin_is_a_workload_error(self, tmp_path, monkeypatch):
        plugin = tmp_path / "zz_broken.py"
        plugin.write_text("raise RuntimeError('boom')\n")
        monkeypatch.setenv(WORKLOAD_PATH_ENV, str(plugin))
        with pytest.raises(WorkloadError, match="zz_broken"):
            load_plugins(refresh=True)


class TestCliSurface:
    def test_workloads_list_matches_registry(self, capsys):
        main(["workloads", "--list"])
        out = capsys.readouterr().out
        listed = {
            line.split()[0]
            for line in out.splitlines()[2:]  # skip title + header
            if line.strip() and not set(line) <= {"-", " "}
        }
        expected = {spec.name for spec in workloads()}
        assert listed == expected

    def test_workloads_tag_filter(self, capsys):
        main(["workloads", "--tag", "livermore"])
        out = capsys.readouterr().out
        rows = [ln for ln in out.splitlines() if ln.startswith("ll")]
        assert {r.split()[0] for r in rows} == {
            spec.name for spec in workloads(tag="livermore")
        }

    def test_unknown_tag_exits_with_error(self):
        with pytest.raises(SystemExit):
            main(["workloads", "--tag", "no-such-tag"])
