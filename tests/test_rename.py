"""Tests for modulo variable expansion (repro.codegen.rename).

MVE is the codegen layer that turns a verified modulo schedule into an
executable (unrolled, register-renamed) kernel.  The invariants under
test come straight from Lam (1988):

* ``n_v = max(1, ceil(lifetime_v / II))`` rotating names per value and
  ``KUF = lcm(n_v)`` unroll copies;
* in copy ``u`` the definition of ``v`` writes ``r<v>.<u % n_v>`` and a
  reader at iteration distance ``d`` reads ``r<v>.<(u - d) % n_v>`` —
  checked op-by-op over every copy of real kernels;
* tampered lifetimes (a rotation period shorter than a def-to-read
  span) must raise :class:`VerificationError`, not emit wrong code.
"""

from __future__ import annotations

import math

import pytest

from repro.arch.configs import four_cluster_config, two_cluster_config, unified_config
from repro.codegen import rename_kernel
from repro.codegen.rename import _lifetimes
from repro.core.verify import verify_schedule
from repro.errors import VerificationError
from repro.runner import make_scheduler
from repro.workloads.kernels import ALL_KERNELS, resolve_kernel

KERNELS = ("daxpy", "dot", "sqrtnorm", "tridiag", "fib", "hydro")
CONFIGS = {
    "unified": unified_config(),
    "2c": two_cluster_config(1, 1),
    "4c": four_cluster_config(1, 1),
}


def schedule_for(kernel, config_key="unified"):
    config = CONFIGS[config_key]
    _name, factory = resolve_kernel(kernel)
    graph = factory()
    sched = make_scheduler("bsa", config).schedule(graph)
    verify_schedule(sched)
    return sched


class TestExpansionArithmetic:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("config_key", sorted(CONFIGS))
    def test_copies_and_kuf(self, kernel, config_key):
        sched = schedule_for(kernel, config_key)
        renamed = rename_kernel(sched)
        assert renamed.ii == sched.ii
        assert renamed.stage_count == sched.stage_count
        for node, span in renamed.lifetimes.items():
            assert renamed.register_copies[node] == max(
                1, math.ceil(span / sched.ii)
            )
        assert renamed.kuf == math.lcm(*renamed.register_copies.values())
        assert renamed.total_registers == sum(renamed.register_copies.values())
        assert len(renamed.copies) == renamed.kuf
        assert all(len(rows) == renamed.ii for rows in renamed.copies)

    def test_long_lifetime_forces_expansion(self):
        # daxpy's loads feed an fmul 4-cycle chain; on the unified
        # machine II is small enough that at least one value must rotate
        # through more than one name (that is the whole point of MVE).
        renamed = rename_kernel(schedule_for("daxpy"))
        assert any(n > 1 for n in renamed.register_copies.values())
        assert renamed.kuf > 1

    def test_lifetimes_cover_carried_uses(self):
        sched = schedule_for("dot")
        spans = _lifetimes(sched)
        graph = sched.graph
        for node, span in spans.items():
            assert span >= graph.operation(node).latency
            for dep in graph.flow_consumers(node):
                reach = (
                    sched.ops[dep.dst].cycle
                    + sched.ii * dep.distance
                    - sched.ops[node].cycle
                )
                assert span >= reach


class TestRenamingCorrectness:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_rotation_rule_holds_for_every_op(self, kernel):
        sched = schedule_for(kernel, "2c")
        renamed = rename_kernel(sched)
        graph = sched.graph
        reads_of = {
            node: {dep.dst: dep.distance for dep in graph.flow_consumers(node)}
            for node in sched.ops
        }
        for u, rows in enumerate(renamed.copies):
            for ops in rows:
                for op in ops:
                    n = renamed.register_copies.get(op.node)
                    if op.dest is not None:
                        assert op.dest == f"r{op.node}.{u % n}"
                    for src in op.sources:
                        name, _, k = src.partition(".")
                        producer = int(name[1:])
                        distance = reads_of[producer][op.node]
                        n_p = renamed.register_copies[producer]
                        assert int(k) == (u - distance) % n_p

    def test_every_scheduled_op_appears_in_every_copy(self):
        sched = schedule_for("hydro")
        renamed = rename_kernel(sched)
        for rows in renamed.copies:
            nodes = [op.node for ops in rows for op in ops]
            assert sorted(nodes) == sorted(sched.ops)

    def test_all_kernels_self_verify(self):
        # rename_kernel raises VerificationError internally if any span
        # escapes its rotation period; sweeping the whole catalogue is
        # the cheap way to prove the arithmetic is airtight.
        for name in ALL_KERNELS:
            rename_kernel(schedule_for(name, "2c"))


class TestSelfCheck:
    def test_tampered_lifetimes_raise(self, monkeypatch):
        import repro.codegen.rename as rename_mod

        sched = schedule_for("daxpy")
        honest = _lifetimes(sched)
        assert any(span > sched.ii for span in honest.values())
        monkeypatch.setattr(
            rename_mod,
            "_lifetimes",
            lambda s: {node: 1 for node in honest},
        )
        with pytest.raises(VerificationError, match="rotates every"):
            rename_kernel(sched)


class TestRendering:
    def test_describe_and_render(self):
        renamed = rename_kernel(schedule_for("daxpy"))
        text = renamed.render()
        assert text.startswith("renamed kernel of 'daxpy':")
        assert f"KUF={renamed.kuf}" in text
        assert "copy 0:" in text
        assert f"copy {renamed.kuf - 1}:" in text
        # Rotated names actually show up in the listing.
        expanded = [v for v, n in renamed.register_copies.items() if n > 1]
        assert expanded
        assert f"r{expanded[0]}.1" in text

    def test_store_has_no_dest(self):
        renamed = rename_kernel(schedule_for("daxpy"))
        stores = [
            op
            for rows in renamed.copies
            for ops in rows
            for op in ops
            if op.opcode == "store"
        ]
        assert stores
        assert all(op.dest is None for op in stores)
        assert all("= store" not in op.render() for op in stores)
