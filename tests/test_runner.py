"""Tests for the parallel, cache-backed experiment engine (repro.runner).

Covers the acceptance criteria of the runner work:

* cache hit / miss / invalidation on a code-version bump;
* deterministic, byte-identical figure data at ``--jobs 1`` vs
  ``--jobs N``;
* resume semantics: a sweep that died mid-way recomputes only the
  missing points;
* a second figure invocation completes entirely from cache with zero
  scheduler calls.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.arch.configs import four_cluster_config, two_cluster_config, unified_config
from repro.core.base import SchedulerBase
from repro.core.selective import SelectiveRule, UnrollPolicy
from repro.core.unified import UnifiedScheduler
from repro.experiments import (
    ExperimentContext,
    fig8_grid,
    fig8_rows,
    run_crossval,
    run_fig8,
    suite_grid,
)
from repro.runner import (
    PointResult,
    ResultCache,
    execute_point,
    execute_points,
    run_sweep,
    scenario_for,
)
from repro.runner.engine import store_result
from repro.workloads.kernels import kernel_loop
from repro.workloads.specfp import build_program

FIG8_DIMS = dict(cluster_counts=(2,), bus_counts=(1,), latencies=(1,))


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache", code_version="test-v1")


def small_suite():
    return [build_program("applu")]


def small_ctx(cache=None, jobs=1):
    return ExperimentContext(suite=small_suite(), cache=cache, jobs=jobs)


def _hammer_cache(root, code_version, payload, rounds):
    """Re-store and re-read the same cache entries in a tight loop.

    Module level so the spawn context can pickle it into worker
    processes.  Returns the number of failed reads: with atomic writes
    there must be none, because ``get`` treats a torn or partially
    visible entry as a miss.
    """
    from repro.runner.scenario import ScenarioPoint

    cache = ResultCache(root, code_version=code_version)
    pairs = [
        (ScenarioPoint(**point_doc), PointResult.from_dict(result_doc))
        for point_doc, result_doc in payload
    ]
    failures = 0
    for _ in range(rounds):
        for point, result in pairs:
            cache.put(point, result)
            if cache.get(point) is None:
                failures += 1
    return failures


class TestScenarioPoint:
    def test_identity_is_content_addressed(self):
        """Same loop body, scheduler and machine -> same identity."""
        a = scenario_for(
            kernel_loop("daxpy"), two_cluster_config(), "bsa", UnrollPolicy.NONE
        )
        b = scenario_for(
            kernel_loop("daxpy"), two_cluster_config(), "bsa", UnrollPolicy.NONE
        )
        assert a == b
        assert a.canonical() == b.canonical()

    def test_identity_distinguishes_machine_and_policy(self):
        loop = kernel_loop("daxpy")
        base = scenario_for(loop, two_cluster_config(), "bsa", UnrollPolicy.NONE)
        other_cfg = scenario_for(
            loop, four_cluster_config(), "bsa", UnrollPolicy.NONE
        )
        other_policy = scenario_for(
            loop, two_cluster_config(), "bsa", UnrollPolicy.ALL
        )
        assert base.canonical() != other_cfg.canonical()
        assert base.canonical() != other_policy.canonical()

    def test_without_simulation_twin(self):
        point = scenario_for(
            kernel_loop("daxpy", trip_count=50),
            two_cluster_config(),
            "bsa",
            UnrollPolicy.NONE,
            simulate=True,
        )
        twin = point.without_simulation()
        assert point.simulate and point.niter == 50
        assert not twin.simulate and twin.niter == 0
        assert twin.graph_hash == point.graph_hash

    def test_result_roundtrip(self):
        loop = kernel_loop("daxpy")
        point = scenario_for(loop, two_cluster_config(), "bsa", UnrollPolicy.NONE)
        result = execute_point(point, loop)
        back = PointResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back.loop_result().ii == result.loop_result().ii
        assert back.unroll_factor == result.unroll_factor


class TestResultCache:
    def test_miss_then_hit(self, cache):
        loop = kernel_loop("daxpy")
        point = scenario_for(loop, two_cluster_config(), "bsa", UnrollPolicy.NONE)
        assert cache.get(point) is None
        result = execute_point(point, loop)
        cache.put(point, result)
        again = cache.get(point)
        assert again is not None
        assert again.loop_result().ii == result.loop_result().ii
        assert cache.stats().entries == 1
        assert cache.stats().hits == 1 and cache.stats().misses == 1

    def test_code_version_bump_invalidates(self, tmp_path):
        """Entries written under one code version are unreachable under
        another — the invalidation mechanism of the whole cache."""
        loop = kernel_loop("daxpy")
        point = scenario_for(loop, two_cluster_config(), "bsa", UnrollPolicy.NONE)
        v1 = ResultCache(tmp_path / "c", code_version="v1")
        v1.put(point, execute_point(point, loop))
        assert v1.get(point) is not None
        v2 = ResultCache(tmp_path / "c", code_version="v2")
        assert v2.get(point) is None
        # the old entry is still on disk (clear wipes all versions)
        assert v2.stats().entries == 1
        assert v2.clear() == 1
        assert ResultCache(tmp_path / "c", code_version="v1").get(point) is None

    def test_default_code_version_tracks_source_content(self, monkeypatch):
        """Any scheduler edit invalidates the cache, version bump or not.

        ``default_code_version`` must mix a content hash of the package
        sources into the key, so editing any ``src/repro/**/*.py`` file
        without touching ``__version__`` still orphans stale entries.
        """
        from repro.runner import cache as cache_mod

        monkeypatch.setattr(cache_mod, "_SOURCE_HASH", None)
        v1 = cache_mod.default_code_version()
        assert cache_mod.package_source_hash() in v1
        # memoised: the second call must not rescan the tree
        monkeypatch.setattr(cache_mod.Path, "rglob", None)
        assert cache_mod.default_code_version() == v1

    def test_source_hash_changes_with_content(self, tmp_path):
        from repro.runner.cache import package_source_hash

        tree = tmp_path / "pkg"
        (tree / "sub").mkdir(parents=True)
        (tree / "mod.py").write_text("x = 1\n")
        (tree / "sub" / "other.py").write_text("y = 1\n")
        h1 = package_source_hash(tree)
        (tree / "mod.py").write_text("x = 2\n")
        h2 = package_source_hash(tree)
        assert h1 != h2
        # renaming a file (same bytes) also changes the hash
        (tree / "mod.py").rename(tree / "mod2.py")
        h3 = package_source_hash(tree)
        assert h3 not in (h1, h2)

    def test_corrupt_entry_is_a_miss(self, cache):
        loop = kernel_loop("daxpy")
        point = scenario_for(loop, two_cluster_config(), "bsa", UnrollPolicy.NONE)
        cache.put(point, execute_point(point, loop))
        cache.path_for(point).write_text("{not json")
        assert cache.get(point) is None

    def test_concurrent_writers_never_tear_entries(self, tmp_path):
        """Handler threads and worker processes hammering the same keys.

        The regression this guards: a pid-suffixed temp file let two
        threads of one process interleave writes and publish a torn
        entry.  With per-writer ``mkstemp`` temp files every read must
        parse, no ``.tmp`` files may leak, and each point ends up as
        exactly one byte-identical entry.
        """
        root = tmp_path / "stress"
        loop = kernel_loop("daxpy")
        points = [
            scenario_for(loop, config(), "bsa", policy)
            for config in (two_cluster_config, four_cluster_config)
            for policy in (UnrollPolicy.NONE, UnrollPolicy.ALL)
        ]
        results = {point: execute_point(point, loop) for point in points}
        payload = [
            (json.loads(point.canonical()), result.to_dict())
            for point, result in results.items()
        ]
        args = (str(root), "test-v1", payload, 30)

        thread_failures = []
        threads = [
            threading.Thread(
                target=lambda: thread_failures.append(_hammer_cache(*args))
            )
            for _ in range(4)
        ]
        spawn = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=3, mp_context=spawn) as pool:
            futures = [pool.submit(_hammer_cache, *args) for _ in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            process_failures = [future.result() for future in futures]

        assert sum(thread_failures) + sum(process_failures) == 0
        assert list(root.rglob("*.tmp")) == []
        check = ResultCache(root, code_version="test-v1")
        assert check.stats().entries == len(points)
        for point, result in results.items():
            data = json.loads(check.path_for(point).read_text())
            assert data == result.to_dict()

    def test_sim_point_cross_pollinates_schedule(self, cache):
        """Caching a simulated point also publishes its schedule twin."""
        loop = kernel_loop("daxpy", trip_count=20)
        point = scenario_for(
            loop, two_cluster_config(), "bsa", UnrollPolicy.NONE, simulate=True
        )
        store_result(cache, point, execute_point(point, loop))
        twin = cache.get(point.without_simulation())
        assert twin is not None and twin.sim is None
        assert cache.stats().entries == 2


class TestRunSweep:
    def grid(self):
        suite = small_suite()
        return suite_grid(suite, two_cluster_config(), "bsa", UnrollPolicy.NONE)

    def test_duplicates_collapse(self, cache):
        items = self.grid()
        results, stats = run_sweep(items + items, cache=cache)
        assert stats.total == len(items)
        assert stats.executed == len(items)
        assert len(results) == len(items)

    def test_resume_after_partial_sweep(self, cache):
        """A killed sweep's surviving cache entries are not recomputed."""
        items = self.grid()
        half = items[: len(items) // 2]
        _, first = run_sweep(half, cache=cache)
        assert first.executed == len(half)
        _, second = run_sweep(items, cache=cache)
        assert second.cached == len(half)
        assert second.executed == len(items) - len(half)
        _, third = run_sweep(items, cache=cache)
        assert third.executed == 0 and third.cached == len(items)

    def test_fresh_recomputes_but_rewrites(self, cache):
        items = self.grid()
        run_sweep(items, cache=cache)
        _, stats = run_sweep(items, cache=cache, fresh=True)
        assert stats.executed == len(items) and stats.cached == 0
        _, warm = run_sweep(items, cache=cache)
        assert warm.executed == 0

    def test_parallel_matches_serial(self, cache):
        """Deterministic sharding: jobs=4 returns the same results."""
        items = self.grid()
        serial, _ = run_sweep(items)
        parallel, stats = run_sweep(items, jobs=4, cache=cache)
        assert stats.jobs == 4
        assert serial.keys() == parallel.keys()
        for key in serial:
            assert serial[key].to_dict() == parallel[key].to_dict()


class TestExecutePoints:
    """The execution core shared by run_sweep and the scheduling service."""

    def misses(self):
        suite = small_suite()
        items = suite_grid(suite, two_cluster_config(), "bsa", UnrollPolicy.NONE)
        return [(point.canonical(), (point, loop)) for point, loop in items]

    def test_serial_matches_sharded(self):
        misses = self.misses()
        serial = execute_points(misses, jobs=1)
        sharded = execute_points(misses, jobs=3)
        assert serial.keys() == sharded.keys()
        for key in serial:
            assert serial[key].to_dict() == sharded[key].to_dict()

    def test_injected_pool_is_reused_not_closed(self, cache):
        from repro.runner import make_worker_pool

        misses = self.misses()
        serial = execute_points(misses, jobs=1)
        pool = make_worker_pool(2)
        try:
            first = execute_points(misses, jobs=2, pool=pool, cache=cache)
            # the pool must survive the call: run a second batch on it
            second = execute_points(misses, jobs=2, pool=pool)
            for results in (first, second):
                assert results.keys() == serial.keys()
                for key in serial:
                    assert serial[key].to_dict() == results[key].to_dict()
            # pooled workers persisted their results to the shared cache
            for _key, (point, _loop) in misses:
                assert cache.get(point) is not None
        finally:
            pool.shutdown(wait=True)

    def test_run_sweep_accepts_injected_pool(self, cache):
        from repro.runner import make_worker_pool

        suite = small_suite()
        items = suite_grid(suite, two_cluster_config(), "bsa", UnrollPolicy.NONE)
        baseline, _ = run_sweep(items)
        pool = make_worker_pool(2)
        try:
            pooled, stats = run_sweep(items, jobs=2, pool=pool, cache=cache)
            assert stats.executed == len(items)
            assert baseline.keys() == pooled.keys()
            for key in baseline:
                assert baseline[key].to_dict() == pooled[key].to_dict()
        finally:
            pool.shutdown(wait=True)

    def test_empty_misses(self):
        assert execute_points([]) == {}


class TestFig8ThroughRunner:
    """The acceptance criteria: byte-identical figure data, full cache reuse."""

    def rows(self, ctx):
        return json.dumps(fig8_rows(run_fig8(ctx, **FIG8_DIMS)), sort_keys=True)

    def test_jobs1_vs_jobsN_byte_identical(self, cache):
        serial = self.rows(small_ctx())
        parallel = self.rows(small_ctx(cache=cache, jobs=4))
        assert serial == parallel

    def test_second_invocation_zero_scheduler_calls(self, cache, monkeypatch):
        first = small_ctx(cache=cache)
        first_rows = self.rows(first)
        assert first.stats.executed > 0

        calls = {"n": 0}
        original = SchedulerBase.schedule

        def counting(self, graph):
            calls["n"] += 1
            return original(self, graph)

        monkeypatch.setattr(SchedulerBase, "schedule", counting)
        monkeypatch.setattr(UnifiedScheduler, "schedule", counting)
        second = small_ctx(cache=cache)
        second_rows = self.rows(second)
        assert second_rows == first_rows
        assert calls["n"] == 0, "cached run must not invoke any scheduler"
        assert second.stats.executed == 0
        assert second.stats.cached == second.stats.total > 0

    def test_grid_declaration_covers_reduction(self):
        """Every point the Figure 8 reducer asks for is in the grid."""
        ctx = small_ctx()
        grid = fig8_grid(ctx, **FIG8_DIMS)
        stats = ctx.run_grid(grid)
        assert stats.executed == stats.total > 0
        run_fig8(ctx, **FIG8_DIMS)
        # the reduction found everything in the memo: nothing re-ran
        assert ctx.stats.executed == stats.executed


def starved_case():
    """A (program, machine) pair that forces the list-schedule fallback."""
    from repro.arch.cluster import MachineConfig
    from repro.arch.resources import BusSpec, FuSet
    from repro.ir.ddg import DependenceGraph
    from repro.ir.loop import Loop, Program

    g = DependenceGraph("fat")
    p1 = g.add_operation("fadd")
    p2 = g.add_operation("fadd")
    c = g.add_operation("fadd")
    g.add_dependence(p1, c)
    g.add_dependence(p2, c)
    prog = Program("p", [Loop(graph=g, trip_count=100)])
    # One cluster, one register: c reads two values in one cycle, so no
    # modulo schedule exists and the harness must fall back.
    starved = MachineConfig("starved", 1, FuSet(1, 1, 1), 1, BusSpec(0, 1))
    return prog, starved


class TestContextIntegration:
    def test_fallback_survives_cache_roundtrip(self, tmp_path):
        """A starved machine's fallback is recorded on replay too."""
        prog, starved = starved_case()
        cache = ResultCache(tmp_path / "c", code_version="v")

        ctx = ExperimentContext(suite=[prog], cache=cache)
        ctx.program_ipc(prog, starved, "bsa", UnrollPolicy.NONE)
        assert len(ctx.fallbacks) == 1

        replay = ExperimentContext(suite=[prog], cache=cache)
        replay.program_ipc(prog, starved, "bsa", UnrollPolicy.NONE)
        assert len(replay.fallbacks) == 1
        assert replay.stats.executed == 0

    def test_fallback_flag_survives_sim_prior(self, tmp_path):
        """Simulating on top of a memoised fallback schedule keeps the
        fallback flag in the cached sim point."""
        prog, starved = starved_case()
        loop = prog.loops[0]
        cache = ResultCache(tmp_path / "c", code_version="v")

        ctx = ExperimentContext(suite=[prog], cache=cache)
        ctx.schedule_loop(loop, starved, "bsa", UnrollPolicy.NONE)
        assert len(ctx.fallbacks) == 1
        ctx.crosscheck_loop(loop, starved, "bsa", UnrollPolicy.NONE)

        replay = ExperimentContext(suite=[prog], cache=cache)
        replay.crosscheck_loop(loop, starved, "bsa", UnrollPolicy.NONE)
        assert len(replay.fallbacks) == 1
        assert replay.stats.executed == 0

    def test_crossval_warms_fig8(self, cache):
        """Simulated sweeps publish their schedules for the figures."""
        ctx = ExperimentContext(suite=small_suite(), cache=cache)
        run_crossval(ctx, **FIG8_DIMS)
        later = ExperimentContext(suite=small_suite(), cache=cache)
        run_fig8(later, **FIG8_DIMS)
        assert later.stats.executed == 0

    def test_selective_rules_cache_separately(self, cache):
        ctx = small_ctx(cache=cache)
        loop = ctx.suite[0].eligible_loops()[0]
        cfg = four_cluster_config(1, 2)
        r1 = ctx.schedule_loop(
            loop, cfg, "bsa", UnrollPolicy.SELECTIVE, SelectiveRule.MII_UNROLLED
        )
        r2 = ctx.schedule_loop(
            loop, cfg, "bsa", UnrollPolicy.SELECTIVE, SelectiveRule.LITERAL
        )
        assert ctx.stats.executed == 2
        assert r1.schedule.is_complete and r2.schedule.is_complete

    def test_memo_object_identity(self):
        ctx = small_ctx()
        loop = ctx.suite[0].eligible_loops()[0]
        cfg = unified_config()
        r1 = ctx.schedule_loop(loop, cfg, "bsa", UnrollPolicy.NONE)
        r2 = ctx.schedule_loop(loop, cfg, "bsa", UnrollPolicy.NONE)
        assert r1 is r2


class TestSweepCli:
    def test_cache_stats_and_clear(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cli-cache"
        main(["cache", "stats", "--cache-dir", str(cache_dir)])
        out = capsys.readouterr().out
        assert "entries:       0" in out
        main(["cache", "clear", "--cache-dir", str(cache_dir)])
        out = capsys.readouterr().out
        assert "removed 0" in out

    def test_sweep_lists_grids(self, capsys):
        from repro.cli import main

        main(["sweep", "--list"])
        out = capsys.readouterr().out
        for name in ("fig4", "fig8", "fig9", "fig10", "crossval", "ablation"):
            assert name in out

    def test_sweep_unknown_grid_exits(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["sweep", "nonsense"])

    def test_schedule_list_prints_aliases(self, capsys):
        from repro.cli import main

        main(["schedule", "--list"])
        out = capsys.readouterr().out
        assert "dot_product" in out  # alias column
        assert "daxpy" in out

    def test_schedule_requires_kernel_or_list(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["schedule"])
