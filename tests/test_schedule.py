"""Unit tests for the ModuloSchedule container."""

import pytest

from repro.arch.configs import two_cluster_config, unified_config
from repro.core.schedule import (
    Communication,
    FailureLog,
    ModuloSchedule,
    ScheduledOp,
)
from repro.errors import SchedulingError
from repro.workloads.kernels import daxpy


def make_schedule(ii=4, config=None):
    return ModuloSchedule(daxpy(), config or unified_config(), ii)


class TestScheduledOp:
    def test_stage_and_row(self):
        op = ScheduledOp(node=0, cycle=9, cluster=0, fu_index=1)
        assert op.stage(4) == 2
        assert op.row(4) == 1

    def test_negative_cycle_floor_stage(self):
        op = ScheduledOp(node=0, cycle=-1, cluster=0, fu_index=0)
        assert op.stage(4) == -1
        assert op.row(4) == 3


class TestCommunication:
    def test_arrival(self):
        c = Communication(producer=1, src_cluster=0, bus=0, start_cycle=5)
        assert c.arrival(bus_latency=2) == 7

    def test_with_reader_accumulates(self):
        c = Communication(1, 0, 0, 5)
        c2 = c.with_reader(1).with_reader(3)
        assert c2.readers == {1, 3}
        assert c.readers == frozenset()  # immutable original


class TestFailureLog:
    def test_total(self):
        log = FailureLog(no_fu=2, no_bus=3, register_pressure=1)
        assert log.total == 6

    def test_dominated_by_bus(self):
        assert FailureLog(no_bus=5, no_fu=2).dominated_by_bus()
        assert not FailureLog(no_bus=1, no_fu=5).dominated_by_bus()
        assert not FailureLog().dominated_by_bus()


class TestModuloSchedule:
    def test_place_twice_rejected(self):
        s = make_schedule()
        s.place(ScheduledOp(0, 0, 0, 0))
        with pytest.raises(SchedulingError):
            s.place(ScheduledOp(0, 1, 0, 0))

    def test_completeness(self):
        s = make_schedule()
        assert not s.is_complete
        for i, node in enumerate(s.graph.node_ids):
            s.place(ScheduledOp(node, i, 0, 0))
        assert s.is_complete

    def test_stage_count_single_stage(self):
        s = make_schedule(ii=10)
        for node in s.graph.node_ids:
            s.place(ScheduledOp(node, node, 0, 0))
        assert s.stage_count == 1

    def test_stage_count_multi_stage(self):
        s = make_schedule(ii=2)
        cycles = [0, 1, 2, 5, 9]
        for node, cycle in zip(s.graph.node_ids, cycles):
            s.place(ScheduledOp(node, cycle, 0, 0))
        assert s.stage_count == 9 // 2 + 1

    def test_stage_count_includes_comm_tail(self):
        cfg = two_cluster_config(1, 4)
        s = ModuloSchedule(daxpy(), cfg, ii=4)
        for node in s.graph.node_ids:
            s.place(ScheduledOp(node, 0, 0, 0))
        s.add_comm(Communication(0, 0, 0, start_cycle=6))
        # comm busy through cycle 9 -> stage 2
        assert s.stage_count == 3

    def test_schedule_length(self):
        s = make_schedule(ii=4)
        s.place(ScheduledOp(0, 7, 0, 0))
        assert s.schedule_length == 8

    def test_cluster_queries(self):
        cfg = two_cluster_config()
        s = ModuloSchedule(daxpy(), cfg, ii=4)
        s.place(ScheduledOp(0, 0, 1, 0))
        assert s.cluster_of(0) == 1
        assert s.nodes_in_cluster(1) == [0]
        assert s.nodes_in_cluster(0) == []

    def test_replace_comm(self):
        cfg = two_cluster_config()
        s = ModuloSchedule(daxpy(), cfg, ii=4)
        c = Communication(0, 0, 0, 2)
        s.add_comm(c)
        s.replace_comm(c, c.with_reader(1))
        assert s.comms[0].readers == {1}

    def test_describe_mentions_ii_and_comms(self):
        cfg = two_cluster_config()
        s = ModuloSchedule(daxpy(), cfg, ii=5)
        s.place(ScheduledOp(0, 0, 0, 0))
        s.add_comm(Communication(0, 0, 0, 2))
        text = s.describe()
        assert "II=5" in text
        assert "comm" in text


class TestBusLimitedFlag:
    def test_unified_never_bus_limited(self):
        s = make_schedule()
        s.attempt_failures = [FailureLog(no_bus=10)]
        assert not s.was_bus_limited

    def test_requires_ii_above_mii(self):
        cfg = two_cluster_config()
        s = ModuloSchedule(daxpy(), cfg, ii=3, mii=3)
        s.attempt_failures = [FailureLog(no_bus=5)]
        assert not s.was_bus_limited

    def test_bus_failures_mark_limited(self):
        cfg = two_cluster_config()
        s = ModuloSchedule(daxpy(), cfg, ii=4, mii=3)
        s.attempt_failures = [FailureLog(no_bus=1, no_fu=10)]
        assert s.was_bus_limited

    def test_saturated_bus_marks_limited(self):
        cfg = two_cluster_config()
        s = ModuloSchedule(daxpy(), cfg, ii=4, mii=3)
        s.attempt_failures = [FailureLog(no_fu=10)]
        s.bus_utilisation = 1.0
        assert s.was_bus_limited

    def test_fu_only_failures_not_limited(self):
        cfg = two_cluster_config()
        s = ModuloSchedule(daxpy(), cfg, ii=4, mii=3)
        s.attempt_failures = [FailureLog(no_fu=10)]
        s.bus_utilisation = 0.5
        assert not s.was_bus_limited
