"""Tests for the II-search driver (base.SchedulerBase)."""

import pytest

from repro.arch.cluster import MachineConfig
from repro.arch.configs import two_cluster_config, unified_config
from repro.arch.resources import BusSpec, FuSet
from repro.core.base import SchedulerBase, default_ii_budget
from repro.core.bsa import BsaScheduler
from repro.core.engine import PlacementEngine
from repro.core.unified import UnifiedScheduler
from repro.errors import SchedulingError
from repro.ir.ddg import DependenceGraph
from repro.workloads.kernels import daxpy, dot_product


class TestIiBudget:
    def test_budget_scales_with_graph(self):
        small = daxpy()
        big = DependenceGraph()
        for _ in range(100):
            big.add_operation("fadd")
        cfg = unified_config()
        assert default_ii_budget(big, cfg) > default_ii_budget(small, cfg)

    def test_budget_includes_comm_slack_on_clustered(self):
        g = daxpy()
        assert default_ii_budget(g, two_cluster_config(1, 4)) > default_ii_budget(
            g, unified_config()
        )


class TestDriverBehaviour:
    def test_starts_at_mii(self):
        sched = UnifiedScheduler(unified_config()).schedule(dot_product())
        assert sched.mii == 3
        assert sched.ii == 3
        assert sched.attempt_failures == []  # first attempt succeeded

    def test_attempt_failures_recorded(self):
        """The figure-7 graph needs II bumps on the clustered machine;
        each failed attempt leaves a FailureLog."""
        from repro.workloads.kernels import figure7_graph

        sched = BsaScheduler(two_cluster_config(1, 1)).schedule(figure7_graph())
        assert sched.ii > sched.mii
        assert len(sched.attempt_failures) == sched.ii - sched.mii
        assert all(log.total > 0 for log in sched.attempt_failures)

    def test_empty_graph_loud(self):
        with pytest.raises(SchedulingError, match="no operations"):
            UnifiedScheduler(unified_config()).schedule(DependenceGraph())

    def test_invalid_graph_rejected_before_scheduling(self):
        g = DependenceGraph()
        a = g.add_operation("fadd")
        b = g.add_operation("fadd")
        g.add_dependence(a, b)
        g.add_dependence(b, a)  # zero-distance cycle
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            UnifiedScheduler(unified_config()).schedule(g)

    def test_early_abort_on_hopeless_pressure(self):
        """Stuck progress + pressure failures aborts well before the
        budget (the error says 'register-pressure bound')."""
        starved = MachineConfig("starved", 1, FuSet(4, 4, 4), 1, BusSpec(0, 1))
        g = DependenceGraph()
        p1 = g.add_operation("fadd")
        p2 = g.add_operation("fadd")
        c = g.add_operation("fadd")
        g.add_dependence(p1, c)
        g.add_dependence(p2, c)
        with pytest.raises(SchedulingError, match="register-pressure bound") as exc:
            BsaScheduler(starved).schedule(g)
        assert exc.value.ii_tried is not None
        assert exc.value.ii_tried < default_ii_budget(g, starved)

    def test_max_ii_override(self):
        with pytest.raises(SchedulingError) as exc:
            UnifiedScheduler(unified_config(), max_ii=1).schedule(dot_product())
        assert exc.value.ii_tried == 1


class TestSubclassContract:
    def test_place_all_false_means_next_ii(self):
        """A subclass returning False must trigger II increments."""

        attempts = []

        class CountingScheduler(SchedulerBase):
            name = "counting"

            def _place_all(self, engine: PlacementEngine) -> bool:
                attempts.append(engine.ii)
                if engine.ii < 4:
                    return False
                for node in engine.graph.node_ids:
                    placement = engine.find_placement(node, 0)
                    from repro.core.engine import Placement

                    if not isinstance(placement, Placement):
                        return False
                    engine.commit(placement)
                return True

        sched = CountingScheduler(unified_config()).schedule(daxpy())
        assert attempts == [1, 2, 3, 4]
        assert sched.ii == 4
