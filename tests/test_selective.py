"""Unit/integration tests for the unrolling policies (Figure 6)."""

import pytest

from repro.arch.configs import four_cluster_config, two_cluster_config, unified_config
from repro.core.bsa import BsaScheduler
from repro.core.selective import (
    SelectiveRule,
    UnrollPolicy,
    schedule_with_policy,
    selective_unroll_decision,
)
from repro.core.unified import UnifiedScheduler
from repro.core.verify import verify_schedule
from repro.workloads.kernels import daxpy, dot_product, ladder_graph


class TestPolicyNone:
    def test_returns_factor_one(self, two_cluster):
        r = schedule_with_policy(daxpy(), BsaScheduler(two_cluster), UnrollPolicy.NONE)
        assert r.unroll_factor == 1
        assert r.policy is UnrollPolicy.NONE
        verify_schedule(r.schedule)


class TestPolicyAll:
    def test_unrolls_by_cluster_count(self, four_cluster):
        r = schedule_with_policy(daxpy(), BsaScheduler(four_cluster), UnrollPolicy.ALL)
        assert r.unroll_factor == 4
        assert len(r.schedule.graph) == 4 * len(daxpy())
        verify_schedule(r.schedule)

    def test_unified_machine_never_unrolls(self, unified):
        r = schedule_with_policy(daxpy(), UnifiedScheduler(unified), UnrollPolicy.ALL)
        assert r.unroll_factor == 1

    def test_falls_back_when_unrolled_unschedulable(self):
        """If the unrolled body defeats the scheduler (register pressure),
        the original loop is kept."""
        from repro.arch.cluster import MachineConfig
        from repro.arch.resources import BusSpec, FuSet
        from repro.ir.ddg import DependenceGraph

        tiny = MachineConfig("tiny", 2, FuSet(2, 2, 2), 3, BusSpec(1, 1))
        g = DependenceGraph("fat")
        # three parallel producer pairs joined by consumers: per-copy needs
        # >= 2 regs; x2 copies co-scheduled overflow a 3-reg file.
        for i in range(3):
            p1 = g.add_operation("fadd")
            p2 = g.add_operation("fadd")
            c = g.add_operation("fadd")
            g.add_dependence(p1, c)
            g.add_dependence(p2, c)
        r = schedule_with_policy(g, BsaScheduler(tiny), UnrollPolicy.ALL)
        verify_schedule(r.schedule)
        assert r.unroll_factor in (1, 2)  # fallback allowed
        if r.unroll_factor == 1:
            assert r.base_schedule is not None


class TestSelectiveDecision:
    def test_not_bus_limited_keeps_loop(self, four_cluster):
        r = schedule_with_policy(
            dot_product(), BsaScheduler(four_cluster), UnrollPolicy.SELECTIVE
        )
        # serial reduction: II = RecMII, never bus limited
        assert r.unroll_factor == 1
        assert not r.schedule.was_bus_limited

    def test_ladder_selective_unrolls(self):
        cfg = two_cluster_config(n_buses=1, bus_latency=2)
        r = schedule_with_policy(
            ladder_graph(), BsaScheduler(cfg), UnrollPolicy.SELECTIVE
        )
        assert r.unroll_factor == 2
        assert r.base_schedule is not None
        assert r.base_schedule.was_bus_limited
        # parity with the unified machine: 3 cycles per source iteration
        assert r.ii_per_original_iteration == 3.0

    def test_decision_respects_bandwidth_estimate(self):
        """A loop whose cross-copy deps exceed the bus budget is kept."""
        from repro.ir.ddg import DependenceGraph

        g = DependenceGraph("carried-heavy")
        prev = g.add_operation("fadd")
        first = prev
        for i in range(7):
            node = g.add_operation("fadd")
            g.add_dependence(prev, node)
            prev = node
        # many odd-distance carried edges -> expensive after unrolling
        nodes = g.node_ids
        for i in range(0, 6):
            g.add_dependence(nodes[i + 1], nodes[i], distance=1)
        cfg = two_cluster_config(n_buses=1, bus_latency=4)
        sched = BsaScheduler(cfg).schedule(g)
        if sched.was_bus_limited:
            decision = selective_unroll_decision(g, cfg, sched)
            # comneeded = 6 * 2 = 12 transfers, cycneeded = 48 — never
            # below the unrolled MII for this small graph.
            assert not decision

    def test_literal_vs_mii_rule_defined_for_all(self):
        cfg = two_cluster_config(1, 2)
        sched = BsaScheduler(cfg).schedule(ladder_graph())
        for rule in SelectiveRule:
            decision = selective_unroll_decision(
                ladder_graph(), cfg, sched, rule=rule
            )
            assert isinstance(decision, bool)

    def test_unified_decision_is_false(self, unified):
        sched = UnifiedScheduler(unified).schedule(daxpy())
        assert not selective_unroll_decision(daxpy(), unified, sched)


class TestResultMetadata:
    def test_ii_per_original_iteration(self, four_cluster):
        r = schedule_with_policy(daxpy(), BsaScheduler(four_cluster), UnrollPolicy.ALL)
        assert r.ii_per_original_iteration == r.schedule.ii / 4

    def test_stage_count_passthrough(self, two_cluster):
        r = schedule_with_policy(daxpy(), BsaScheduler(two_cluster), UnrollPolicy.NONE)
        assert r.stage_count == r.schedule.stage_count
