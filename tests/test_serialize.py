"""Round-trip tests for JSON serialisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.configs import four_cluster_config, two_cluster_config, unified_config
from repro.arch.resources import BusSpec, FuSet
from repro.core.bsa import BsaScheduler
from repro.core.verify import verify_schedule
from repro.errors import GraphError
from repro.ir.ddg import DependenceGraph
from repro.ir.loop import Loop, Program
from repro.ir.serialize import (
    config_from_dict,
    config_to_dict,
    dumps,
    graph_from_dict,
    graph_to_dict,
    loads,
    loop_from_dict,
    loop_to_dict,
    program_from_dict,
    program_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.workloads.kernels import ALL_KERNELS, daxpy, figure7_graph


def graph_signature(g: DependenceGraph):
    return (
        g.name,
        [(op.opcode.name, op.tag) for op in g.operations()],
        sorted((d.src, d.dst, d.latency, d.distance, d.kind.value) for d in g.edges),
    )


class TestGraphRoundTrip:
    def test_all_kernels(self):
        for name, build in ALL_KERNELS.items():
            g = build()
            g2 = graph_from_dict(loads(dumps(graph_to_dict(g))))
            assert graph_signature(g) == graph_signature(g2), name

    def test_wrong_kind_rejected(self):
        data = graph_to_dict(daxpy())
        data["kind"] = "schedule"
        with pytest.raises(GraphError, match="expected"):
            graph_from_dict(data)

    def test_wrong_version_rejected(self):
        data = graph_to_dict(daxpy())
        data["format"] = 99
        with pytest.raises(GraphError, match="version"):
            graph_from_dict(data)


class TestLoopProgramRoundTrip:
    def test_loop(self):
        lp = Loop(graph=daxpy(), trip_count=128, times_executed=7)
        lp2 = loop_from_dict(loads(dumps(loop_to_dict(lp))))
        assert lp2.trip_count == 128
        assert lp2.times_executed == 7
        assert graph_signature(lp.graph) == graph_signature(lp2.graph)

    def test_program(self):
        p = Program(
            "prog",
            [
                Loop(graph=daxpy(), trip_count=10),
                Loop(graph=figure7_graph(), trip_count=99, times_executed=2),
            ],
        )
        p2 = program_from_dict(loads(dumps(program_to_dict(p))))
        assert p2.name == "prog"
        assert len(p2) == 2
        assert p2.loops[1].trip_count == 99


class TestConfigRoundTrip:
    def test_paper_configs(self):
        for cfg in (unified_config(), two_cluster_config(2, 4), four_cluster_config()):
            cfg2 = config_from_dict(loads(dumps(config_to_dict(cfg))))
            assert cfg2 == cfg

    def test_heterogeneous(self):
        from repro.arch.cluster import heterogeneous_config

        cfg = heterogeneous_config(
            "h", (FuSet(1, 3, 1), FuSet(3, 1, 1)), 16, BusSpec(1, 2)
        )
        cfg2 = config_from_dict(loads(dumps(config_to_dict(cfg))))
        assert cfg2 == cfg


class TestScheduleRoundTrip:
    def test_clustered_schedule_reverifies(self):
        cfg = two_cluster_config(1, 1)
        sched = BsaScheduler(cfg).schedule(figure7_graph())
        sched2 = schedule_from_dict(loads(dumps(schedule_to_dict(sched))))
        verify_schedule(sched2)
        assert sched2.ii == sched.ii
        assert sched2.mii == sched.mii
        assert len(sched2.comms) == len(sched.comms)
        assert {n: (o.cycle, o.cluster, o.fu_index) for n, o in sched.ops.items()} == {
            n: (o.cycle, o.cluster, o.fu_index) for n, o in sched2.ops.items()
        }

    def test_tampered_schedule_fails_verification(self):
        from repro.errors import VerificationError

        cfg = two_cluster_config(1, 1)
        sched = BsaScheduler(cfg).schedule(daxpy())
        data = loads(dumps(schedule_to_dict(sched)))
        data["operations"][0]["cycle"] += 1  # corrupt one placement
        sched2 = schedule_from_dict(data)
        with pytest.raises(VerificationError):
            verify_schedule(sched2)
