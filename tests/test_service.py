"""End-to-end tests for the batch scheduling service (repro.service).

Covers the acceptance criteria of the service work:

* correctness: responses are byte-identical to the direct CLI
  ``schedule`` path, for every scenario in the loadtest mix;
* dedupe: repeated submissions are served from the memo/cache and say
  so; batches dedupe identical points across concurrent jobs;
* concurrency: parallel clients all succeed and agree;
* lifecycle: async submit + polling, error mapping (400/404/503),
  graceful shutdown with a job in flight.

Every test runs over a real HTTP server on an ephemeral port — the
stdlib client in :mod:`repro.service.client` is the only transport.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.cli import main
from repro.errors import ServiceError
from repro.runner import ResultCache
from repro.runner.grids import GRIDS, GridSpec
from repro.service import (
    ClientError,
    RequestError,
    ScheduleRequest,
    SchedulingService,
    ServiceClient,
    ServiceClosed,
    ServiceServer,
    default_mix,
    reference_payload,
    run_loadtest,
)
from repro.service.core import result_payload


@pytest.fixture()
def service(tmp_path):
    svc = SchedulingService(
        cache=ResultCache(tmp_path / "svc-cache", code_version="test-svc"),
        workers=0,
    )
    yield svc
    svc.close()


@pytest.fixture()
def server(service):
    srv = ServiceServer(service, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()


@pytest.fixture()
def client(server):
    return ServiceClient(port=server.port, timeout=60.0)


# ---------------------------------------------------------------------------
# Request validation
# ---------------------------------------------------------------------------
class TestScheduleRequest:
    def test_defaults_and_aliases(self):
        req = ScheduleRequest.from_payload(
            {"kernel": "dot_product", "policy": "none"}
        )
        assert req.kernel == "dot"  # canonicalised
        assert req.policy == "no-unrolling"
        assert req.clusters == 4 and req.buses == 1

    def test_unknown_kernel(self):
        with pytest.raises(RequestError, match="unknown kernel"):
            ScheduleRequest.from_payload({"kernel": "nope"})

    def test_unknown_field_rejected(self):
        with pytest.raises(RequestError, match="unknown request field"):
            ScheduleRequest.from_payload({"kernel": "dot", "cluster": 4})

    def test_unknown_policy(self):
        with pytest.raises(RequestError, match="unknown policy"):
            ScheduleRequest.from_payload({"kernel": "dot", "policy": "twice"})

    def test_unknown_scheduler(self):
        with pytest.raises(RequestError, match="unknown scheduler"):
            ScheduleRequest.from_payload({"kernel": "dot", "scheduler": "xyz"})

    def test_numeric_validation(self):
        with pytest.raises(RequestError, match="'clusters'"):
            ScheduleRequest.from_payload({"kernel": "dot", "clusters": 0})
        with pytest.raises(RequestError, match="'clusters'"):
            ScheduleRequest.from_payload({"kernel": "dot", "clusters": True})
        with pytest.raises(RequestError, match="'miss_rate'"):
            ScheduleRequest.from_payload({"kernel": "dot", "miss_rate": 1.5})

    def test_niter_irrelevant_without_simulation(self):
        a, _ = ScheduleRequest.from_payload({"kernel": "dot"}).grid_item()
        b, _ = ScheduleRequest.from_payload(
            {"kernel": "dot", "niter": 999}
        ).grid_item()
        assert a.canonical() == b.canonical()


# ---------------------------------------------------------------------------
# Service core (through HTTP)
# ---------------------------------------------------------------------------
class TestScheduleEndpoint:
    def test_roundtrip_and_dedupe(self, client, service):
        first = client.schedule({"kernel": "daxpy"})
        assert first["status"] == "done"
        assert first["result"]["cached"] is False
        assert first["result"]["ii"] >= 1
        second = client.schedule({"kernel": "daxpy"})
        assert second["result"]["cached"] is True
        assert second["result"]["rendered"] == first["result"]["rendered"]
        stats = client.stats()
        assert stats["points_executed"] == 1
        assert stats["points_cached"] >= 1

    def test_matches_direct_runner_byte_for_byte(self, client):
        request = ScheduleRequest.from_payload(
            {"kernel": "fir4", "clusters": 2}
        )
        via_service = client.schedule(request)["result"]
        direct = reference_payload(request)
        assert via_service["rendered"] == direct["rendered"]
        assert via_service["schedule"] == direct["schedule"]

    def test_matches_cli_schedule_stdout(self, server, capsys):
        main(["schedule", "dot", "--clusters", "4"])
        expected = capsys.readouterr().out
        main(["submit", "dot", "--clusters", "4", "--port", str(server.port)])
        assert capsys.readouterr().out == expected

    def test_exact_scheduler_roundtrips_byte_identically(self, server, capsys):
        """``"scheduler": "exact"`` over HTTP == the CLI's direct path."""
        main(["schedule", "daxpy", "--clusters", "2", "--scheduler", "exact"])
        expected = capsys.readouterr().out
        assert "II=1" in expected  # the oracle's optimum, not a fallback
        main(["submit", "daxpy", "--clusters", "2", "--scheduler", "exact",
              "--port", str(server.port)])
        assert capsys.readouterr().out == expected

    def test_exact_scheduler_accepted_by_validation(self):
        req = ScheduleRequest.from_payload(
            {"kernel": "daxpy", "scheduler": "exact", "clusters": 2}
        )
        assert req.scheduler == "exact"

    def test_simulated_request(self, client):
        doc = client.schedule(
            {"kernel": "daxpy", "clusters": 2, "simulate": True, "niter": 50}
        )
        sim = doc["result"]["sim"]
        assert sim is not None
        assert sim["simulated_cycles"] == sim["analytic_cycles"]

    def test_disk_cache_survives_memo_wipe(self, client, service):
        client.schedule({"kernel": "vadd"})
        service._memo.clear()  # simulate a memo reset; disk must serve it
        doc = client.schedule({"kernel": "vadd"})
        assert doc["result"]["cached"] is True

    def test_async_submit_and_poll(self, client):
        doc = client.schedule({"kernel": "hydro"}, wait=False)
        assert doc["status"] in ("queued", "running", "done")
        final = client.poll_job(doc["job"], timeout=60.0)
        assert final["status"] == "done"
        assert final["results"][0]["kernel"] == "hydro"


class TestSweepEndpoint:
    def test_batch_matches_individual(self, client):
        batch = [
            {"kernel": "dot"},
            {"kernel": "daxpy", "clusters": 2},
            {"kernel": "dot"},  # duplicate inside one job
        ]
        doc = client.sweep(batch)
        assert doc["status"] == "done"
        results = doc["results"]
        assert len(results) == 3
        assert results[0]["rendered"] == results[2]["rendered"]
        # the duplicate is served without new work
        assert results[2]["cached"] is True
        single = client.schedule({"kernel": "daxpy", "clusters": 2})
        assert single["result"]["rendered"] == results[1]["rendered"]

    def test_named_grid_job(self, client, monkeypatch):
        def run_tiny(ctx, quick):
            from repro.core.selective import UnrollPolicy
            from repro.experiments import suite_grid
            from repro.workloads.specfp import build_program

            items = suite_grid(
                [build_program("applu")],
                ScheduleRequest(kernel="dot", clusters=2).config(),
                "bsa",
                UnrollPolicy.NONE,
            )[:2]
            ctx.run_grid(items)
            return f"tiny grid: {len(items)} point(s)"

        monkeypatch.setitem(
            GRIDS, "tiny", GridSpec("tiny", "test grid", run_tiny)
        )
        doc = client.sweep(grid="tiny")
        assert doc["status"] == "done"
        assert doc["output"] == "tiny grid: 2 point(s)"
        assert client.stats()["points_executed"] >= 2

    def test_grid_and_requests_exclusive(self, client):
        with pytest.raises(ClientError) as err:
            client._call(
                "POST",
                "/sweep",
                {"grid": "fig8", "requests": [{"kernel": "dot"}]},
            )
        assert err.value.status == 400

    def test_unknown_grid(self, client):
        with pytest.raises(ClientError) as err:
            client.sweep(grid="fig99")
        assert err.value.status == 400


class TestErrorMapping:
    def test_unknown_path_404(self, client):
        with pytest.raises(ClientError) as err:
            client._call("GET", "/nope")
        assert err.value.status == 404

    def test_unknown_post_path_404_even_without_body(self, client, server):
        import urllib.request

        request = urllib.request.Request(
            f"{client.base_url}/nope", data=b"", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 404

    def test_unknown_job_404(self, client):
        with pytest.raises(ClientError) as err:
            client.job("j99999")
        assert err.value.status == 404

    def test_bad_json_400(self, client, server):
        import urllib.request

        request = urllib.request.Request(
            f"{client.base_url}/schedule",
            data=b"not json{",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_unknown_kernel_400(self, client):
        with pytest.raises(ClientError) as err:
            client.schedule({"kernel": "nope"})
        assert err.value.status == 400
        assert "unknown kernel" in str(err.value)

    def test_unknown_scheduler_400(self, client):
        with pytest.raises(ClientError) as err:
            client.schedule({"kernel": "dot", "scheduler": "nope"})
        assert err.value.status == 400
        assert "unknown scheduler" in str(err.value)
        assert "exact" in str(err.value)  # the known list is in the message

    def test_empty_sweep_400(self, client):
        with pytest.raises(ClientError) as err:
            client.sweep([])
        assert err.value.status == 400


# ---------------------------------------------------------------------------
# Concurrency
# ---------------------------------------------------------------------------
class TestConcurrentClients:
    def test_parallel_submits_agree(self, server):
        mix = default_mix()[:6]
        outcomes: dict[str, set[str]] = {}
        errors: list[Exception] = []
        lock = threading.Lock()

        def hammer(worker_id: int) -> None:
            client = ServiceClient(port=server.port, timeout=60.0)
            for i in range(6):
                payload = mix[(worker_id + i) % len(mix)]
                try:
                    doc = client.schedule(payload)
                    with lock:
                        outcomes.setdefault(
                            json.dumps(payload, sort_keys=True), set()
                        ).add(doc["result"]["rendered"])
                except Exception as exc:  # noqa: BLE001 - collected below
                    with lock:
                        errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(n,)) for n in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(outcomes) == len(mix)
        # every scenario produced exactly one distinct schedule
        assert all(len(renders) == 1 for renders in outcomes.values())

    @pytest.mark.slow
    def test_worker_pool_path(self, tmp_path):
        svc = SchedulingService(
            cache=ResultCache(tmp_path / "pool-cache", code_version="test-svc"),
            workers=2,
        )
        srv = ServiceServer(svc, port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(port=srv.port, timeout=120.0)
            doc = client.sweep([{"kernel": k} for k in ("dot", "daxpy", "vadd")])
            assert doc["status"] == "done"
            assert [r["cached"] for r in doc["results"]] == [False] * 3
            for result in doc["results"]:
                request = ScheduleRequest.from_payload(
                    {"kernel": result["kernel"]}
                )
                assert result["rendered"] == reference_payload(request)["rendered"]
            assert client.stats()["pool_live"] is True
        finally:
            srv.shutdown()
            srv.server_close()
            svc.close()


# ---------------------------------------------------------------------------
# Loadtest (the CI smoke in miniature)
# ---------------------------------------------------------------------------
class TestLoadtest:
    def test_cold_then_warm(self, server):
        cold = run_loadtest(
            port=server.port, clients=4, requests=32, verify=True
        )
        assert cold.ok, cold.errors + cold.mismatches
        assert cold.successes == 32
        assert cold.verified == len(default_mix())
        warm = run_loadtest(
            port=server.port, clients=4, requests=32, verify=False
        )
        assert warm.ok
        assert warm.hit_rate >= 0.95
        assert warm.p50_s < cold.duration_s  # warm requests never schedule

    def test_report_shape(self):
        from repro.service.client import LoadtestReport

        report = LoadtestReport(
            clients=2, requests=4, successes=4, duration_s=1.0,
            latencies_s=[0.1, 0.2, 0.3, 0.4], cache_hits=4,
        )
        assert report.success_rate == 1.0
        assert report.hit_rate == 1.0
        assert report.p50_s == 0.2
        assert report.p95_s == 0.4
        doc = report.to_dict()
        assert doc["p50_ms"] == pytest.approx(200.0)
        assert "loadtest: 4 request(s)" in report.render()


# ---------------------------------------------------------------------------
# Observability: /metrics, /stats counters, trace ids
# ---------------------------------------------------------------------------
class TestObservability:
    def _scrape(self, server):
        import urllib.request

        from repro.obs import prom

        with urllib.request.urlopen(f"{server.url}/metrics", timeout=10) as resp:
            assert resp.headers["Content-Type"] == prom.CONTENT_TYPE
            return prom.parse(resp.read().decode())

    def test_metrics_scrape_is_valid_and_matches_stats(self, client, server):
        client.schedule({"kernel": "daxpy"})
        client.schedule({"kernel": "daxpy"})  # memo hit
        families = self._scrape(server)
        # The scraped names are a public contract (CI gates on them).
        for required in (
            "repro_requests_total",
            "repro_points_executed_total",
            "repro_points_memo_hits_total",
            "repro_cache_hits_total",
            "repro_cache_misses_total",
            "repro_http_requests_total",
            "repro_http_request_duration_seconds",
            "repro_batch_duration_seconds",
            "repro_queue_depth",
            "repro_pool_live",
        ):
            assert required in families, f"missing {required}"
        values = {
            (s.name, s.labels): s.value
            for fam in families.values()
            for s in fam.samples
        }
        stats = client.stats()
        # Counters are callback-backed reads of the same integers /stats
        # reports, so the two views cannot drift.
        assert values[("repro_requests_total", ())] == stats["requests_total"]
        assert (
            values[("repro_points_executed_total", ())]
            == stats["counters"]["executed"]
            == stats["points_executed"]
            == 1
        )
        assert (
            values[("repro_points_memo_hits_total", ())]
            == stats["counters"]["memo_hits"]
            == 1
        )
        assert values[("repro_cache_hits_total", ())] == stats["cache"]["hits"]
        assert (
            values[("repro_cache_misses_total", ())]
            == stats["cache"]["misses"]
        )

    def test_http_request_metrics_label_routes(self, client, server):
        client.schedule({"kernel": "vadd"})
        client.healthz()
        doc = client.schedule({"kernel": "vadd"}, wait=False)
        client.poll_job(doc["job"], timeout=30.0)
        families = self._scrape(server)
        values = {
            (s.name, s.labels): s.value
            for fam in families.values()
            for s in fam.samples
        }
        post = ("repro_http_requests_total", (("route", "/schedule"), ("code", "200")))
        assert values[post] >= 1
        # /jobs/<id> collapses to one bounded label value.
        jobs = [
            labels
            for (name, labels) in values
            if name == "repro_http_requests_total"
            and dict(labels).get("route", "").startswith("/jobs")
        ]
        assert jobs and all(dict(lb)["route"] == "/jobs" for lb in jobs)
        hist_count = (
            "repro_http_request_duration_seconds_count",
            (("route", "/schedule"),),
        )
        assert values[hist_count] >= 1

    def test_stats_hit_rate_is_a_ratio(self, client):
        client.schedule({"kernel": "dot"})
        client.schedule({"kernel": "dot"})
        stats = client.stats()
        counters = stats["counters"]
        served = counters["executed"] + counters["memo_hits"] + counters["disk_hits"]
        assert stats["points_cached"] == counters["memo_hits"] + counters["disk_hits"]
        assert stats["hit_rate"] == pytest.approx(
            stats["points_cached"] / served
        )
        assert 0.0 <= stats["cache"]["hit_rate"] <= 1.0

    def test_trace_id_adopted_and_echoed(self, client, server):
        import urllib.request

        trace_id = "feed" * 8  # 32 hex chars
        body = json.dumps({"kernel": "daxpy", "wait": True}).encode()
        request = urllib.request.Request(
            f"{server.url}/schedule",
            data=body,
            method="POST",
            headers={
                "Content-Type": "application/json",
                "X-Trace-Id": trace_id,
            },
        )
        with urllib.request.urlopen(request, timeout=30) as resp:
            assert resp.headers["X-Trace-Id"] == trace_id
            doc = json.loads(resp.read())
        assert doc["trace_id"] == trace_id
        # The job document is retrievable by id and carries the trace id.
        assert client.job(doc["job"])["trace_id"] == trace_id

    def test_implausible_trace_id_replaced(self, server):
        import urllib.request

        body = json.dumps({"kernel": "daxpy", "wait": True}).encode()
        request = urllib.request.Request(
            f"{server.url}/schedule",
            data=body,
            method="POST",
            headers={
                "Content-Type": "application/json",
                "X-Trace-Id": "not valid! way too weird",
            },
        )
        with urllib.request.urlopen(request, timeout=30) as resp:
            echoed = resp.headers["X-Trace-Id"]
        assert echoed and echoed.isalnum() and echoed != "not valid! way too weird"

    def test_loadtest_report_carries_failure_trace_ids(self, server):
        report = run_loadtest(
            port=server.port, clients=2, requests=8, verify=False
        )
        assert report.ok and report.failures == []
        doc = report.to_dict()
        assert doc["latency_histogram"]["count"] == 8
        assert doc["latency_histogram"]["buckets"][-1]["le"] == "+Inf"
        # Unknown-kernel requests fail; each failure names its trace id.
        bad = run_loadtest(
            port=server.port,
            clients=1,
            requests=2,
            mix=[{"kernel": "no-such-kernel"}],
            verify=False,
        )
        assert not bad.ok
        assert len(bad.failures) == 2
        assert all(f["kind"] == "error" for f in bad.failures)
        assert all(
            isinstance(f["trace_id"], str) and f["trace_id"]
            for f in bad.failures
        )


# ---------------------------------------------------------------------------
# Shutdown
# ---------------------------------------------------------------------------
class TestShutdown:
    def test_graceful_shutdown_mid_job(self, tmp_path, monkeypatch):
        svc = SchedulingService(cache=None, workers=0)
        release = threading.Event()
        running = threading.Event()

        import repro.service.core as core

        original = core.execute_points

        def slow_execute(misses, **kwargs):
            running.set()
            release.wait(10.0)
            return original(misses, **kwargs)

        monkeypatch.setattr(core, "execute_points", slow_execute)
        in_flight = svc.submit_schedule(
            ScheduleRequest.from_payload({"kernel": "dot"})
        )
        assert running.wait(10.0)  # dispatcher is now mid-batch
        queued = svc.submit_schedule(
            ScheduleRequest.from_payload({"kernel": "daxpy"})
        )
        closer = threading.Thread(target=svc.close, daemon=True)
        closer.start()
        release.set()
        closer.join(15.0)
        assert not closer.is_alive()
        assert in_flight.status == "done"  # the batch in flight completed
        assert queued.status in ("cancelled", "done")
        assert queued.wait(0.1)  # waiters were released either way
        with pytest.raises(ServiceClosed):
            svc.submit_schedule(
                ScheduleRequest.from_payload({"kernel": "dot"})
            )

    def test_close_is_idempotent(self, tmp_path):
        svc = SchedulingService(cache=None, workers=0)
        svc.close()
        svc.close()

    def test_finished_jobs_are_evicted_past_limit(self):
        svc = SchedulingService(cache=None, workers=0, job_limit=5)
        try:
            jobs = []
            for _ in range(8):
                job = svc.submit_schedule(
                    ScheduleRequest.from_payload({"kernel": "dot"})
                )
                assert job.wait(30.0)
                jobs.append(job)
            assert len(svc._jobs) <= 6  # limit + the most recent submission
            assert svc.job(jobs[0].id) is None  # oldest finished: evicted
            assert svc.job(jobs[-1].id) is not None
        finally:
            svc.close()

    def test_workers0_grid_job_never_spawns_a_pool(self, monkeypatch):
        from repro.runner.grids import GRIDS as grids_registry
        from repro.runner.grids import GridSpec as Spec

        def run_tiny(ctx, quick):
            assert ctx.pool is None and ctx.jobs == 1
            return "ok"

        monkeypatch.setitem(grids_registry, "tiny0", Spec("tiny0", "t", run_tiny))
        svc = SchedulingService(cache=None, workers=0)
        try:
            job = svc.submit_grid("tiny0", jobs=4)  # client asks for 4
            assert job.wait(30.0)
            assert job.status == "done" and job.output == "ok"
            assert svc.stats()["pool_live"] is False
        finally:
            svc.close()

    def test_healthz_reports_stopping(self, tmp_path):
        svc = SchedulingService(cache=None, workers=0)
        assert svc.healthz()["status"] == "ok"
        svc.close()
        assert svc.healthz()["status"] == "stopping"

    def test_concurrent_close_does_not_deadlock(self):
        svc = SchedulingService(cache=None, workers=0)
        closers = [
            threading.Thread(target=svc.close, daemon=True) for _ in range(3)
        ]
        for t in closers:
            t.start()
        for t in closers:
            t.join(15.0)
        assert not any(t.is_alive() for t in closers)


class TestFailureIsolation:
    def test_one_bad_point_does_not_fail_other_jobs(self, monkeypatch):
        import repro.service.core as core

        svc = SchedulingService(cache=None, workers=0)
        try:
            good = svc.submit_schedule(
                ScheduleRequest.from_payload({"kernel": "dot"})
            )
            assert good.wait(30.0) and good.status == "done"

            original = core.execute_points

            def explode_on_daxpy(misses, **kwargs):
                if any(item[1][0].loop == "daxpy" for item in misses):
                    raise RuntimeError("boom")
                return original(misses, **kwargs)

            monkeypatch.setattr(core, "execute_points", explode_on_daxpy)
            bad = svc.submit_schedule(
                ScheduleRequest.from_payload({"kernel": "daxpy"})
            )
            assert bad.wait(30.0)
            assert bad.status == "failed"
            assert "boom" in bad.error
            # a memo-served request is untouched by the failure
            repeat = svc.submit_schedule(
                ScheduleRequest.from_payload({"kernel": "dot"})
            )
            assert repeat.wait(30.0) and repeat.status == "done"
            assert repeat.results[0]["cached"] is True
            # and the service recovers for fresh scenarios too
            other = svc.submit_schedule(
                ScheduleRequest.from_payload({"kernel": "vadd"})
            )
            assert other.wait(30.0) and other.status == "done"
        finally:
            svc.close()

    def test_broken_pool_is_discarded(self):
        from concurrent.futures import BrokenExecutor

        svc = SchedulingService(cache=None, workers=2)
        try:
            class FakePool:
                def __init__(self):
                    self.down = False

                def shutdown(self, wait=True):
                    self.down = True

            fake = FakePool()
            svc._pool = fake
            svc._discard_pool_if_broken(RuntimeError("not pool related"))
            assert svc._pool is fake  # untouched
            svc._discard_pool_if_broken(BrokenExecutor("worker died"))
            assert svc._pool is None and fake.down is True
        finally:
            svc.close()


# ---------------------------------------------------------------------------
# Payload shape
# ---------------------------------------------------------------------------
class TestResultPayload:
    def test_payload_fields(self):
        request = ScheduleRequest.from_payload({"kernel": "dot"})
        payload = reference_payload(request)
        assert payload["kernel"] == "dot"
        assert payload["point"]["scheduler"] == "bsa"
        assert payload["ii"] >= 1 and payload["stage_count"] >= 1
        assert payload["fallback"] is False
        assert payload["rendered"].startswith("ModuloSchedule")
        assert payload["sim"] is None

    def test_payload_roundtrips_schedule(self):
        from repro.ir.serialize import schedule_from_dict

        request = ScheduleRequest.from_payload({"kernel": "stencil3"})
        payload = reference_payload(request)
        sched = schedule_from_dict(payload["schedule"])
        assert sched.ii == payload["ii"]
