"""Tests for the cycle-accurate simulator (repro.sim).

The load-bearing property: under a perfect memory, executing the emitted
code of any verified schedule must reproduce the analytic model's
``(ceil(NITER/U) + SC - 1) * II`` cycles and its IPC *exactly* — any
divergence is a failing test, not a logged warning.
"""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.arch.configs import (
    four_cluster_config,
    two_cluster_config,
    unified_config,
)
from repro.core.bsa import BsaScheduler
from repro.core.schedule import Communication
from repro.core.unified import UnifiedScheduler
from repro.core.verify import verify_schedule
from repro.errors import SimulationError
from repro.ir.unroll import unroll_graph
from repro.perf.model import StallModel, pipeline_cycles
from repro.sim import (
    PerfectMemory,
    RandomMissMemory,
    crosscheck_loop,
    crosscheck_schedule,
    memory_from_stall_model,
    simulate_result,
    simulate_schedule,
)
from repro.workloads.kernels import ALL_KERNELS, kernel_loop, resolve_kernel

NITER = 100


def _schedule(graph, config):
    scheduler = (
        UnifiedScheduler(config) if config.n_clusters == 1 else BsaScheduler(config)
    )
    sched = scheduler.schedule(graph)
    verify_schedule(sched)
    return sched


class TestCrossCheckAllKernels:
    """Simulated == analytic for every kernel on the paper's machines."""

    @pytest.fixture(params=["unified", "4-cluster/1-bus"])
    def config(self, request):
        if request.param == "unified":
            return unified_config()
        return four_cluster_config(n_buses=1, bus_latency=1)

    @pytest.mark.parametrize("name", sorted(ALL_KERNELS))
    def test_exact_match(self, name, config):
        graph = ALL_KERNELS[name]()
        sched = _schedule(graph, config)
        report = simulate_schedule(sched, NITER)

        expected = pipeline_cycles(NITER, sched.stage_count, sched.ii)
        assert report.cycles == expected
        assert report.stall_cycles == 0
        assert report.ipc == len(graph) * NITER / expected
        assert report.issued_ops == len(graph) * NITER

    @pytest.mark.parametrize("name", sorted(ALL_KERNELS))
    def test_crosscheck_schedule_is_exact(self, name, config):
        sched = _schedule(ALL_KERNELS[name](), config)
        check = crosscheck_schedule(sched, NITER)
        assert check.exact
        assert check.cycle_divergence == 0
        assert check.ipc_divergence == 0.0

    @pytest.mark.parametrize("name", ["daxpy", "dot", "stencil3", "figure7"])
    def test_short_trip_counts_match_too(self, name, config):
        """Trip counts shorter than the pipeline depth still agree (the
        simulator predicates the ramp; the model charges the same ramp)."""
        sched = _schedule(ALL_KERNELS[name](), config)
        for niter in (1, 2, 3, sched.stage_count, 7):
            assert crosscheck_schedule(sched, niter).exact


class TestUnrolledSimulation:
    @pytest.mark.parametrize("name", ["daxpy", "dot", "cmul", "figure7"])
    @pytest.mark.parametrize("niter", [96, 103])  # multiple and remainder
    def test_unrolled_matches_model(self, name, niter):
        config = two_cluster_config(n_buses=2, bus_latency=1)
        graph = ALL_KERNELS[name]()
        source_ops = len(graph)
        sched = _schedule(unroll_graph(graph, 2), config)
        report = simulate_schedule(
            sched, niter, unroll_factor=2, ops_per_source_iteration=source_ops
        )
        k = math.ceil(niter / 2)
        assert report.kernel_iterations == k
        assert report.cycles == pipeline_cycles(k, sched.stage_count, sched.ii)
        assert report.ipc == source_ops * niter / report.cycles
        # the remainder batch issues more than it usefully retires
        assert report.issued_ops == 2 * source_ops * k

    def test_crosscheck_loop_via_policy(self):
        from repro.core.selective import UnrollPolicy, schedule_with_policy

        loop = kernel_loop("daxpy", trip_count=100)
        config = four_cluster_config(n_buses=2, bus_latency=1)
        result = schedule_with_policy(
            loop.graph, BsaScheduler(config), UnrollPolicy.ALL
        )
        check = crosscheck_loop(loop, result)
        assert check.exact


class TestDataflowTokenCheck:
    def test_moved_op_trips_the_check(self):
        """A corrupted schedule (consumer moved onto its producer's cycle)
        is a hard simulation error, caught while executing the code."""
        sched = _schedule(ALL_KERNELS["daxpy"](), four_cluster_config())
        dep = next(
            d
            for d in sched.graph.edges
            if d.moves_value
            and d.distance == 0
            and sched.ops[d.src].cluster == sched.ops[d.dst].cluster
        )
        sched.ops[dep.dst] = replace(
            sched.ops[dep.dst], cycle=sched.ops[dep.src].cycle
        )
        with pytest.raises(SimulationError, match="before it is ready"):
            simulate_schedule(sched, 10)

    def test_comm_before_production_is_an_error(self):
        sched = _schedule(ALL_KERNELS["stencil3"](), four_cluster_config())
        assert sched.comms, "kernel expected to communicate on 4 clusters"
        comm = sched.comms[0]
        sched.comms[0] = replace(comm, start_cycle=0)
        producer = sched.ops[comm.producer]
        if producer.cycle + sched.graph.operation(comm.producer).latency > 0:
            with pytest.raises(SimulationError, match="before the value exists"):
                simulate_schedule(sched, 10)

    def test_double_booked_bus_is_contention(self):
        sched = _schedule(ALL_KERNELS["stencil3"](), four_cluster_config())
        assert sched.comms
        comm = sched.comms[0]
        # a second transfer of the same value on the same bus, same cycle
        sched.comms.append(
            Communication(
                producer=comm.producer,
                src_cluster=comm.src_cluster,
                bus=comm.bus,
                start_cycle=comm.start_cycle,
                readers=comm.readers,
            )
        )
        with pytest.raises(SimulationError, match="contention"):
            simulate_schedule(sched, 10)

    def test_value_never_delivered_is_an_error(self):
        """Dropping a communication strands the remote consumer."""
        sched = _schedule(ALL_KERNELS["stencil3"](), four_cluster_config())
        assert sched.comms
        sched.comms.pop(0)
        with pytest.raises(SimulationError, match="never reached"):
            simulate_schedule(sched, 10)


class TestMemoryModel:
    def test_certain_miss_is_deterministic(self):
        sched = _schedule(ALL_KERNELS["daxpy"](), four_cluster_config())
        report = simulate_schedule(
            sched, 50, memory=RandomMissMemory(1.0, 7, seed=1)
        )
        base = pipeline_cycles(50, sched.stage_count, sched.ii)
        assert report.loads_executed == 2 * 50
        assert report.load_misses == report.loads_executed
        assert report.stall_cycles == 7 * report.loads_executed
        assert report.cycles == base + report.stall_cycles
        assert report.ipc < len(sched.graph) * 50 / base

    def test_seeded_runs_reproduce(self):
        sched = _schedule(ALL_KERNELS["daxpy"](), four_cluster_config())
        runs = [
            simulate_schedule(sched, 200, memory=RandomMissMemory(0.3, 9, seed=42))
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        other = simulate_schedule(
            sched, 200, memory=RandomMissMemory(0.3, 9, seed=43)
        )
        assert other.load_misses != runs[0].load_misses or other.cycles != runs[0].cycles

    def test_miss_rate_zero_is_perfect(self):
        sched = _schedule(ALL_KERNELS["gather"](), unified_config())
        a = simulate_schedule(sched, 64, memory=PerfectMemory())
        b = simulate_schedule(sched, 64, memory=RandomMissMemory(0.0, 100, seed=5))
        assert a == b

    def test_memory_from_stall_model(self):
        assert isinstance(memory_from_stall_model(StallModel(0.0, 0)), PerfectMemory)
        mem = memory_from_stall_model(StallModel(0.25, 12), seed=7)
        assert isinstance(mem, RandomMissMemory)
        assert mem.miss_rate == 0.25 and mem.miss_penalty == 12

    def test_sampled_stalls_approach_the_closed_form(self):
        """The dynamic model's mean stall tracks the StallModel estimate."""
        sched = _schedule(ALL_KERNELS["daxpy"](), unified_config())
        stall_model = StallModel(0.2, 10)
        niter = 400
        samples = [
            simulate_schedule(
                sched, niter, memory=RandomMissMemory(0.2, 10, seed=s)
            ).stall_cycles
            for s in range(20)
        ]
        expected = stall_model.stall_cycles(2 * niter)
        mean = sum(samples) / len(samples)
        assert abs(mean - expected) / expected < 0.15


class TestReportShape:
    def test_bus_occupancy_and_peak_live_are_sane(self):
        config = four_cluster_config(n_buses=1, bus_latency=1)
        sched = _schedule(ALL_KERNELS["stencil3"](), config)
        report = simulate_schedule(sched, NITER)
        assert len(report.bus_occupancy) == 1
        assert all(0.0 <= occ <= 1.0 for occ in report.bus_occupancy)
        assert report.bus_occupancy[0] > 0.0  # this kernel communicates
        assert len(report.peak_live) == 4
        assert all(0 <= p <= config.regs_per_cluster for p in report.peak_live)
        assert max(report.peak_live) > 0

    def test_render_mentions_the_headline_numbers(self):
        sched = _schedule(ALL_KERNELS["dot"](), four_cluster_config())
        report = simulate_schedule(sched, NITER)
        text = report.render()
        assert str(report.cycles) in text
        assert "IPC" in text
        assert "bus 0 occupancy" in text
        assert "peak live" in text

    def test_simulate_result_carries_unroll(self):
        from repro.core.selective import ScheduledLoopResult, UnrollPolicy

        graph = ALL_KERNELS["daxpy"]()
        sched = _schedule(unroll_graph(graph, 2), two_cluster_config())
        result = ScheduledLoopResult(sched, 2, UnrollPolicy.ALL)
        report = simulate_result(result, 60, ops_per_source_iteration=len(graph))
        assert report.unroll_factor == 2
        assert report.kernel_iterations == 30

    def test_bad_arguments_are_rejected(self):
        sched = _schedule(ALL_KERNELS["daxpy"](), unified_config())
        with pytest.raises(SimulationError):
            simulate_schedule(sched, 0)
        with pytest.raises(SimulationError):
            simulate_schedule(sched, 10, unroll_factor=0)
        with pytest.raises(SimulationError):
            simulate_schedule(sched, 10, unroll_factor=3)  # 5 ops % 3 != 0


class TestKernelHelpers:
    def test_aliases_resolve(self):
        key, factory = resolve_kernel("dot_product")
        assert key == "dot"
        assert factory is ALL_KERNELS["dot"]
        assert resolve_kernel("daxpy")[0] == "daxpy"
        with pytest.raises(KeyError):
            resolve_kernel("nonsense")

    def test_kernel_loop(self):
        loop = kernel_loop("dot_product", trip_count=64)
        assert loop.name == "dot"
        assert loop.trip_count == 64
        assert loop.eligible_for_modulo_scheduling


class TestCrossvalExperiment:
    def test_small_grid_has_zero_divergence(self):
        from repro.experiments import (
            ExperimentContext,
            crossval_rows,
            max_cycle_divergence,
            max_ipc_divergence,
            run_crossval,
        )
        from repro.workloads.specfp import build_program

        ctx = ExperimentContext(suite=[build_program("swim")])
        points = run_crossval(
            ctx, cluster_counts=(4,), bus_counts=(1,), latencies=(1,)
        )
        assert points
        assert max_ipc_divergence(points) == 0.0
        assert max_cycle_divergence(points) == 0
        assert all(p.check.exact for p in points)
        rows = crossval_rows(points)
        assert all(row["exact"] == row["loops"] for row in rows)
        per_loop = crossval_rows(points, per_loop=True)
        assert len(per_loop) == len(points)
