"""Unit tests for SMS timings, ordering sets and the node ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mii import rec_mii
from repro.core.sms import (
    compute_timings,
    ordering_sets,
    recurrence_sets,
    sms_order,
    topological_order,
)
from repro.ir.ddg import DependenceGraph
from repro.workloads.kernels import (
    ALL_KERNELS,
    daxpy,
    dot_product,
    figure7_graph,
    ladder_graph,
)


class TestTimings:
    def test_chain_asap(self):
        g = DependenceGraph()
        a = g.add_operation("load")  # latency 2
        b = g.add_operation("fmul")  # latency 4
        c = g.add_operation("fadd")
        g.add_dependence(a, b)
        g.add_dependence(b, c)
        t = compute_timings(g, ii=1)
        assert t[a].asap == 0
        assert t[b].asap == 2
        assert t[c].asap == 6

    def test_alap_of_critical_path_equals_asap(self):
        g = DependenceGraph()
        a = g.add_operation("load")
        b = g.add_operation("fmul")
        g.add_dependence(a, b)
        t = compute_timings(g, ii=1)
        assert t[a].mobility == 0
        assert t[b].mobility == 0

    def test_off_critical_node_has_mobility(self):
        g = DependenceGraph()
        a = g.add_operation("load")  # critical: 2 + 4
        b = g.add_operation("fmul")
        c = g.add_operation("iadd")  # side node joining at the end
        d = g.add_operation("fadd")
        g.add_dependence(a, b)
        g.add_dependence(b, d)
        g.add_dependence(c, d)
        t = compute_timings(g, ii=1)
        assert t[c].mobility > 0

    def test_mobility_never_negative(self):
        for build in ALL_KERNELS.values():
            g = build()
            ii = rec_mii(g)
            for node, t in compute_timings(g, ii).items():
                assert t.mobility >= 0, f"{g.name} node {node}"

    def test_carried_edge_relaxes_at_high_ii(self):
        g = dot_product()
        t_low = compute_timings(g, ii=3)
        t_high = compute_timings(g, ii=10)
        for node in g.node_ids:
            assert t_high[node].asap <= t_low[node].asap

    def test_below_rec_mii_raises(self):
        from repro.errors import GraphError

        g = dot_product()  # RecMII = 3
        with pytest.raises(GraphError, match="diverged"):
            compute_timings(g, ii=2)


class TestRecurrenceSets:
    def test_acyclic_has_none(self):
        assert recurrence_sets(daxpy()) == []

    def test_self_loop_detected(self):
        sets = recurrence_sets(dot_product())
        assert len(sets) == 1
        assert len(sets[0]) == 1

    def test_figure7_recurrence(self):
        sets = recurrence_sets(figure7_graph())
        assert len(sets) == 1
        assert len(sets[0]) == 3  # A, B, D

    def test_sorted_by_rec_mii(self):
        g = DependenceGraph()
        # weak recurrence: iadd self-loop distance 2 -> ceil(1/2) = 1
        weak = g.add_operation("iadd")
        g.add_dependence(weak, weak, distance=2)
        # strong recurrence: fmul+fadd cycle distance 1 -> 7
        a = g.add_operation("fmul")
        b = g.add_operation("fadd")
        g.add_dependence(a, b)
        g.add_dependence(b, a, distance=1)
        sets = recurrence_sets(g)
        assert sets[0] == {a, b}
        assert sets[1] == {weak}

    def test_ladder_has_two_recurrences(self):
        assert len(recurrence_sets(ladder_graph())) == 2


class TestOrderingSets:
    def test_cover_all_nodes_exactly_once(self):
        for build in ALL_KERNELS.values():
            g = build()
            sets = ordering_sets(g)
            seen = set()
            for s in sets:
                assert not (s & seen), f"{g.name}: node in two sets"
                seen |= s
            assert seen == set(g.node_ids), g.name

    def test_recurrence_first(self):
        g = figure7_graph()
        sets = ordering_sets(g)
        assert {0, 1, 3} <= sets[0]  # A, B, D

    def test_connector_nodes_join_second_set(self):
        """Nodes on paths between two recurrences belong to the later set."""
        g = DependenceGraph()
        a = g.add_operation("fmul")  # strong recurrence
        g.add_dependence(a, a, distance=1)
        mid = g.add_operation("iadd")  # connector
        b = g.add_operation("iadd")  # weak recurrence
        g.add_dependence(b, b, distance=2)
        g.add_dependence(a, mid)
        g.add_dependence(mid, b)
        sets = ordering_sets(g)
        assert sets[0] == {a}
        assert mid in sets[1]


class TestSmsOrder:
    def test_is_permutation(self, kernel_graph):
        order = sms_order(kernel_graph)
        assert sorted(order) == kernel_graph.node_ids

    def test_recurrence_nodes_lead(self):
        g = dot_product()
        order = sms_order(g)
        assert order[0] == 3  # the accumulator's self-recurrence

    def test_figure7_starts_with_recurrence(self):
        order = sms_order(figure7_graph())
        assert set(order[:3]) == {0, 1, 3}  # A, B, D in some order

    def test_deterministic(self, kernel_graph):
        assert sms_order(kernel_graph) == sms_order(kernel_graph)

    def test_empty_graph(self):
        assert sms_order(DependenceGraph()) == []

    def test_single_node(self):
        g = DependenceGraph()
        g.add_operation("fadd")
        assert sms_order(g) == [0]

    def test_never_both_preds_and_succs_before_on_dags(self):
        """The paper's property: a position has only predecessors or only
        successors before it.  Holds unconditionally on acyclic kernels
        (recurrences necessarily break it at the cycle-closing node)."""
        for name, build in ALL_KERNELS.items():
            g = build()
            if recurrence_sets(g):
                continue
            _assert_one_sided(g, sms_order(g), name)


def _assert_one_sided(g, order, label):
    placed = set()
    for node in order:
        preds_before = {d.src for d in g.predecessors(node)} & placed
        succs_before = {d.dst for d in g.successors(node)} & placed
        assert not (preds_before and succs_before), (
            f"{label}: node {node} has both preds {preds_before} and "
            f"succs {succs_before} before it"
        )
        placed.add(node)


class TestTopologicalOrder:
    def test_respects_zero_distance_edges(self, kernel_graph):
        order = topological_order(kernel_graph)
        pos = {n: i for i, n in enumerate(order)}
        for dep in kernel_graph.edges:
            if dep.distance == 0:
                assert pos[dep.src] < pos[dep.dst]

    def test_is_permutation(self, kernel_graph):
        assert sorted(topological_order(kernel_graph)) == kernel_graph.node_ids


@st.composite
def random_dag(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    g = DependenceGraph("dag")
    ids = [g.add_operation(draw(st.sampled_from(["iadd", "fadd", "load"])))
           for _ in range(n)]
    for dst in ids:
        for src in ids:
            if src < dst and draw(st.booleans()):
                g.add_dependence(src, dst)
    return g


class TestSmsOrderProperties:
    @given(g=random_dag())
    @settings(max_examples=80, deadline=None)
    def test_permutation_property(self, g):
        assert sorted(sms_order(g)) == g.node_ids

    @given(g=random_dag())
    @settings(max_examples=80, deadline=None)
    def test_one_sided_property_on_random_dags(self, g):
        _assert_one_sided(g, sms_order(g), "random dag")
