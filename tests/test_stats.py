"""Tests for schedule statistics and the stall-model extension."""

import pytest

from repro.arch.configs import four_cluster_config, two_cluster_config, unified_config
from repro.core.bsa import BsaScheduler
from repro.core.selective import ScheduledLoopResult, UnrollPolicy
from repro.core.unified import UnifiedScheduler
from repro.ir.loop import Loop
from repro.perf.model import PERFECT_MEMORY, StallModel, loop_performance
from repro.perf.stats import (
    render_reservation_table,
    schedule_stats,
)
from repro.workloads.kernels import daxpy, figure7_graph, ladder_graph


class TestScheduleStats:
    def test_basic_fields(self, unified):
        sched = UnifiedScheduler(unified).schedule(daxpy())
        stats = schedule_stats(sched)
        assert stats.ii == sched.ii
        assert stats.n_operations == 5
        assert stats.n_communications == 0
        assert stats.max_lifetime >= 1
        assert 0 < stats.fu_utilisation <= 1
        assert stats.bus_utilisation == 0.0

    def test_communication_profile(self, two_cluster):
        sched = BsaScheduler(two_cluster).schedule(daxpy())
        stats = schedule_stats(sched)
        assert stats.n_communications == sched.communication_count
        if stats.n_communications:
            assert stats.broadcast_fanout >= 1.0

    def test_pressure_matches_lifetimes_module(self, four_cluster):
        from repro.core.lifetimes import cluster_pressures

        sched = BsaScheduler(four_cluster).schedule(ladder_graph())
        stats = schedule_stats(sched)
        assert stats.pressure_per_cluster == cluster_pressures(sched)

    def test_describe_mentions_key_figures(self, unified):
        sched = UnifiedScheduler(unified).schedule(daxpy())
        text = schedule_stats(sched).describe()
        assert "II=" in text and "pressure" in text

    def test_mean_lifetime_positive(self, unified):
        sched = UnifiedScheduler(unified).schedule(figure7_graph())
        assert schedule_stats(sched).mean_lifetime > 0


class TestReservationTableRendering:
    def test_row_count(self, two_cluster):
        sched = BsaScheduler(two_cluster).schedule(figure7_graph())
        text = render_reservation_table(sched)
        lines = text.splitlines()
        assert len(lines) == sched.ii + 1  # header + II rows

    def test_all_ops_present(self, unified):
        sched = UnifiedScheduler(unified).schedule(daxpy())
        text = render_reservation_table(sched)
        for node in sched.ops:
            assert f"n{node}" in text

    def test_bus_column_when_clustered(self, two_cluster):
        sched = BsaScheduler(two_cluster).schedule(daxpy())
        assert "bus0" in render_reservation_table(sched)


class TestStallModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            StallModel(miss_rate=1.5)
        with pytest.raises(ValueError):
            StallModel(miss_rate=0.1, miss_penalty=-1)

    def test_perfect_memory_is_free(self):
        assert PERFECT_MEMORY.stall_cycles(10_000) == 0

    def test_stall_cycles(self):
        stall = StallModel(miss_rate=0.1, miss_penalty=20)
        assert stall.stall_cycles(100) == 200

    def test_loop_performance_with_stalls(self, unified):
        graph = daxpy()  # 2 loads per iteration
        loop = Loop(graph=graph, trip_count=100)
        sched = UnifiedScheduler(unified).schedule(graph)
        result = ScheduledLoopResult(sched, 1, UnrollPolicy.NONE)
        perfect = loop_performance(loop, result)
        stalled = loop_performance(loop, result, StallModel(0.05, 20))
        assert stalled.loads_per_iteration == 2
        # 200 loads * 0.05 * 20 = 200 extra cycles
        assert (
            stalled.cycles_per_entry == perfect.cycles_per_entry + 200
        )
        assert stalled.ipc < perfect.ipc

    def test_stores_not_counted_as_loads(self, unified):
        graph = daxpy()  # 2 loads + 1 store
        loop = Loop(graph=graph, trip_count=10)
        sched = UnifiedScheduler(unified).schedule(graph)
        result = ScheduledLoopResult(sched, 1, UnrollPolicy.NONE)
        perf = loop_performance(loop, result, StallModel(1.0, 1))
        assert perf.loads_per_iteration == 2


class TestDefaultClusterPolicy:
    def test_unknown_policy_rejected(self, two_cluster):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="policy"):
            BsaScheduler(two_cluster, default_cluster_policy="random")

    def test_least_loaded_schedules_and_verifies(self, four_cluster, kernel_graph):
        from repro.core.verify import verify_schedule

        sched = BsaScheduler(
            four_cluster, default_cluster_policy="least-loaded"
        ).schedule(kernel_graph)
        verify_schedule(sched)

    def test_least_loaded_spreads_unrolled_copies(self, four_cluster):
        from repro.core.verify import verify_schedule
        from repro.ir.unroll import unroll_graph

        g = unroll_graph(daxpy(), 4)
        sched = BsaScheduler(
            four_cluster, default_cluster_policy="least-loaded"
        ).schedule(g)
        verify_schedule(sched)
        clusters = {op.cluster for op in sched.ops.values()}
        assert len(clusters) == 4
