"""Integration tests for the two-phase (N&E-style) comparator."""

import pytest

from repro.arch.configs import four_cluster_config, two_cluster_config
from repro.core.bsa import BsaScheduler
from repro.core.twophase import TwoPhaseScheduler, partition_graph
from repro.core.verify import verify_schedule
from repro.ir.ddg import DependenceGraph
from repro.ir.unroll import unroll_graph
from repro.workloads.kernels import daxpy, dot_product, figure7_graph, ladder_graph


class TestPartitioner:
    def test_complete_assignment(self, four_cluster, kernel_graph):
        assignment = partition_graph(kernel_graph, four_cluster, ii=4)
        assert set(assignment) == set(kernel_graph.node_ids)
        assert all(0 <= c < 4 for c in assignment.values())

    def test_recurrence_kept_whole(self, two_cluster):
        g = figure7_graph()
        assignment = partition_graph(g, two_cluster, ii=2)
        rec_clusters = {assignment[n] for n in (0, 1, 3)}  # A, B, D
        assert len(rec_clusters) == 1

    def test_capacity_forces_spreading(self, two_cluster):
        # 8 independent fp ops at II=2: each cluster holds 2 fp units x 2
        # rows = 4 -> both clusters must be used.
        g = DependenceGraph()
        for _ in range(8):
            g.add_operation("fadd")
        assignment = partition_graph(g, two_cluster, ii=2)
        from collections import Counter

        counts = Counter(assignment.values())
        assert set(counts) == {0, 1}
        assert max(counts.values()) <= 4

    def test_connected_nodes_attracted(self, two_cluster):
        g, ids = DependenceGraph(), []
        a = g.add_operation("fadd")
        b = g.add_operation("fadd")
        g.add_dependence(a, b)
        assignment = partition_graph(g, two_cluster, ii=4)
        assert assignment[a] == assignment[b]

    def test_deterministic(self, four_cluster, kernel_graph):
        a1 = partition_graph(kernel_graph, four_cluster, ii=4)
        a2 = partition_graph(kernel_graph, four_cluster, ii=4)
        assert a1 == a2


class TestTwoPhaseScheduler:
    def test_all_kernels_verify_2c(self, kernel_graph, two_cluster):
        sched = TwoPhaseScheduler(two_cluster).schedule(kernel_graph)
        verify_schedule(sched)

    def test_all_kernels_verify_4c(self, kernel_graph, four_cluster):
        sched = TwoPhaseScheduler(four_cluster).schedule(kernel_graph)
        verify_schedule(sched)

    def test_slow_bus_configs(self, kernel_graph):
        cfg = two_cluster_config(n_buses=2, bus_latency=4)
        sched = TwoPhaseScheduler(cfg).schedule(kernel_graph)
        verify_schedule(sched)

    def test_single_cluster_works(self, unified, kernel_graph):
        sched = TwoPhaseScheduler(unified).schedule(kernel_graph)
        verify_schedule(sched)


class TestBsaVsTwoPhase:
    """The paper's core claim: single-pass >= two-phase."""

    def test_bsa_never_worse_on_kernels(self, kernel_graph):
        for cfg in (two_cluster_config(1, 1), four_cluster_config(1, 1)):
            bsa = BsaScheduler(cfg).schedule(kernel_graph)
            twop = TwoPhaseScheduler(cfg).schedule(kernel_graph)
            # Allow a tiny per-loop reversal; the aggregate claim is
            # checked in the experiment tests.
            assert bsa.ii <= twop.ii + 1, kernel_graph.name

    def test_bsa_beats_twophase_on_unrolled_ladder(self):
        """On the unrolled ladder the joint pass finds the copy-per-cluster
        split; the partitioner works without cycle information and cannot
        be better."""
        cfg = two_cluster_config(n_buses=1, bus_latency=2)
        g = unroll_graph(ladder_graph(), 2)
        bsa = BsaScheduler(cfg).schedule(g)
        twop = TwoPhaseScheduler(cfg).schedule(g)
        assert bsa.ii <= twop.ii
