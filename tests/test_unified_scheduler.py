"""Integration tests for the unified SMS scheduler."""

import pytest

from repro.core.mii import mii
from repro.core.unified import UnifiedScheduler
from repro.core.verify import verify_schedule
from repro.errors import ConfigError, SchedulingError
from repro.ir.ddg import DependenceGraph
from repro.workloads.kernels import (
    ALL_KERNELS,
    daxpy,
    dot_product,
    figure7_graph,
    first_order_recurrence,
    stencil5,
)


class TestUnifiedScheduler:
    def test_rejects_clustered_machine(self, two_cluster):
        with pytest.raises(ConfigError):
            UnifiedScheduler(two_cluster)

    def test_all_kernels_verify(self, kernel_graph, unified):
        sched = UnifiedScheduler(unified).schedule(kernel_graph)
        verify_schedule(sched)

    def test_achieves_mii_on_all_kernels(self, kernel_graph, unified):
        """SMS reaches II = MII on every classic kernel (no recurrences
        interact with resources at 12-wide issue)."""
        sched = UnifiedScheduler(unified).schedule(kernel_graph)
        assert sched.ii == mii(kernel_graph, unified)

    def test_daxpy_ii_one(self, unified):
        assert UnifiedScheduler(unified).schedule(daxpy()).ii == 1

    def test_dot_product_rec_mii(self, unified):
        # serial reduction: II = fadd latency = 3
        assert UnifiedScheduler(unified).schedule(dot_product()).ii == 3

    def test_recurrence_kernel(self, unified):
        assert UnifiedScheduler(unified).schedule(first_order_recurrence()).ii == 7

    def test_no_communications_on_unified(self, unified):
        sched = UnifiedScheduler(unified).schedule(stencil5())
        assert sched.communication_count == 0

    def test_resource_contention_raises_ii(self, unified):
        # 13 independent fp adds on 4 FP units: ceil(13/4) = 4.
        g = DependenceGraph()
        for _ in range(13):
            g.add_operation("fadd")
        sched = UnifiedScheduler(unified).schedule(g)
        assert sched.ii == 4
        verify_schedule(sched)

    def test_empty_graph_rejected(self, unified):
        with pytest.raises(SchedulingError):
            UnifiedScheduler(unified).schedule(DependenceGraph())

    def test_max_ii_budget_respected(self, unified):
        g = dot_product()  # needs II = 3
        with pytest.raises(SchedulingError):
            UnifiedScheduler(unified, max_ii=2).schedule(g)

    def test_all_cycles_non_negative(self, kernel_graph, unified):
        sched = UnifiedScheduler(unified).schedule(kernel_graph)
        assert all(op.cycle >= 0 for op in sched.ops.values())

    def test_stage_count_reasonable(self, unified):
        # daxpy critical path: load(2) + fmul(4) + fadd(3) + store = 10
        # cycles; at II=1 that is about 10 stages.
        sched = UnifiedScheduler(unified).schedule(daxpy())
        assert 1 <= sched.stage_count <= 12

    def test_figure7_unified_ii_two(self, unified):
        sched = UnifiedScheduler(unified).schedule(figure7_graph())
        assert sched.ii == 2


class TestScheduleQuality:
    """Lifetime sensitivity: schedules should not scatter operations."""

    def test_span_close_to_critical_path(self, unified):
        for name, build in ALL_KERNELS.items():
            g = build()
            sched = UnifiedScheduler(unified).schedule(g)
            critical = sum(op.latency for op in g.operations())
            assert sched.schedule_length <= critical + 2 * sched.ii, name

    def test_max_live_bounded(self, unified):
        from repro.core.lifetimes import max_pressure

        for name, build in ALL_KERNELS.items():
            sched = UnifiedScheduler(unified).schedule(build())
            assert max_pressure(sched) <= 20, name
