"""Unit and property tests for graph unrolling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.ir.ddg import DependenceGraph
from repro.ir.unroll import (
    copy_of,
    count_cross_copy_deps,
    original_node,
    unroll_graph,
)
from repro.workloads.kernels import daxpy, dot_product, figure7_graph


class TestUnrollBasics:
    def test_factor_one_is_copy(self):
        g = daxpy()
        u = unroll_graph(g, 1)
        assert len(u) == len(g)
        assert len(u.edges) == len(g.edges)
        assert u is not g

    def test_node_count_scales(self):
        g = daxpy()
        u = unroll_graph(g, 3)
        assert len(u) == 3 * len(g)

    def test_edge_count_scales(self):
        g = figure7_graph()
        u = unroll_graph(g, 2)
        assert len(u.edges) == 2 * len(g.edges)

    def test_invalid_factor(self):
        with pytest.raises(GraphError):
            unroll_graph(daxpy(), 0)

    def test_id_mapping_helpers(self):
        g = daxpy()
        n = len(g)
        u = unroll_graph(g, 4)
        for node in u.node_ids:
            assert 0 <= copy_of(node, n) < 4
            assert original_node(node, n) in g.node_ids

    def test_opcode_preserved_per_copy(self):
        g = daxpy()
        n = len(g)
        u = unroll_graph(g, 2)
        for node in u.node_ids:
            orig = g.operation(original_node(node, n))
            assert u.operation(node).opcode == orig.opcode


class TestEdgeMapping:
    def test_intra_iteration_edges_stay_in_copy(self):
        g = daxpy()  # all distance-0 edges
        n = len(g)
        u = unroll_graph(g, 4)
        for dep in u.edges:
            assert copy_of(dep.src, n) == copy_of(dep.dst, n)
            assert dep.distance == 0

    def test_distance_one_edge_crosses_copies(self):
        g = dot_product()  # self-edge distance 1 on the accumulator
        n = len(g)
        u = unroll_graph(g, 2)
        carried = [d for d in u.edges if original_node(d.src, n) == original_node(d.dst, n)]
        # acc#0 -> acc#1 at distance 0, acc#1 -> acc#0 at distance 1
        dists = sorted((copy_of(d.src, n), copy_of(d.dst, n), d.distance) for d in carried)
        assert dists == [(0, 1, 0), (1, 0, 1)]

    def test_distance_equal_factor_stays_in_copy(self):
        g = DependenceGraph()
        a = g.add_operation("fadd")
        b = g.add_operation("fadd")
        g.add_dependence(a, b, distance=2)
        u = unroll_graph(g, 2)
        for dep in u.edges:
            assert copy_of(dep.src, 2) == copy_of(dep.dst, 2)
            assert dep.distance == 1

    def test_unrolled_graph_validates(self):
        for build in (daxpy, dot_product, figure7_graph):
            unroll_graph(build(), 4).validate()


class TestCrossCopyCount:
    def test_pure_parallel_loop_has_none(self):
        assert count_cross_copy_deps(daxpy(), 2) == 0

    def test_distance_one_counts(self):
        assert count_cross_copy_deps(dot_product(), 2) == 1

    def test_distance_multiple_of_factor_excluded(self):
        g = DependenceGraph()
        a = g.add_operation("fadd")
        g.add_dependence(a, a, distance=4)
        assert count_cross_copy_deps(g, 2) == 0
        assert count_cross_copy_deps(g, 4) == 0
        assert count_cross_copy_deps(g, 3) == 1

    def test_non_flow_edges_ignored(self):
        from repro.ir.ddg import DepKind

        g = DependenceGraph()
        a = g.add_operation("store")
        b = g.add_operation("load")
        g.add_dependence(a, b, distance=1, kind=DepKind.MEM)
        assert count_cross_copy_deps(g, 2) == 0

    def test_figure7_count_matches_paper(self):
        # One odd-distance edge (A -> E, d=1) -> one cross-copy dep; the
        # paper's "2 communications" is this dep times the unroll factor.
        assert count_cross_copy_deps(figure7_graph(), 2) == 1


@st.composite
def small_graph(draw):
    """Random small DDG with mixed distances (always schedulable)."""
    n = draw(st.integers(min_value=2, max_value=8))
    g = DependenceGraph("prop")
    ids = [g.add_operation(draw(st.sampled_from(["iadd", "fadd", "fmul", "load"])))
           for _ in range(n)]
    n_edges = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(n_edges):
        src = draw(st.sampled_from(ids))
        dst = draw(st.sampled_from(ids))
        if dst <= src:
            distance = draw(st.integers(min_value=1, max_value=3))
        else:
            distance = draw(st.integers(min_value=0, max_value=3))
        g.add_dependence(src, dst, distance=distance)
    return g


class TestUnrollProperties:
    @given(g=small_graph(), factor=st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_counts_scale_exactly(self, g, factor):
        u = unroll_graph(g, factor)
        assert len(u) == factor * len(g)
        assert len(u.edges) == factor * len(g.edges)

    @given(g=small_graph(), factor=st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_edge_images_follow_the_mapping(self, g, factor):
        n = len(g)
        u = unroll_graph(g, factor)
        # Re-derive the expected image set from first principles.
        expected = set()
        for dep in g.edges:
            for k in range(factor):
                expected.add(
                    (
                        k * n + dep.src,
                        ((k + dep.distance) % factor) * n + dep.dst,
                        (k + dep.distance) // factor,
                    )
                )
        actual = {(d.src, d.dst, d.distance) for d in u.edges}
        assert actual == expected

    @given(g=small_graph(), factor=st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_unrolled_validates(self, g, factor):
        g.validate()
        unroll_graph(g, factor).validate()

    @given(g=small_graph(), factor=st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_total_carried_distance_preserved(self, g, factor):
        """sum_k floor((k+d)/f) == d: per original edge, the image
        distances total exactly the original distance, so carried work per
        source iteration is invariant under unrolling."""
        n = len(g)
        u = unroll_graph(g, factor)
        per_pair_orig: dict = {}
        for dep in g.edges:
            key = (dep.src, dep.dst)
            per_pair_orig[key] = per_pair_orig.get(key, 0) + dep.distance
        per_pair_unrolled: dict = {}
        for dep in u.edges:
            key = (original_node(dep.src, n), original_node(dep.dst, n))
            per_pair_unrolled[key] = per_pair_unrolled.get(key, 0) + dep.distance
        assert per_pair_unrolled == per_pair_orig
