"""Tests for the independent schedule verifier, including negative cases.

The verifier is the safety net for the whole package, so these tests
hand-craft *invalid* schedules and check each invariant fires.
"""

import pytest

from repro.arch.configs import two_cluster_config, unified_config
from repro.core.schedule import Communication, ModuloSchedule, ScheduledOp
from repro.core.verify import verify_schedule
from repro.errors import VerificationError
from repro.ir.ddg import DependenceGraph


def simple_graph():
    g = DependenceGraph("pair")
    a = g.add_operation("fadd")
    b = g.add_operation("fadd")
    g.add_dependence(a, b)
    return g, a, b


def valid_unified_schedule():
    g, a, b = simple_graph()
    s = ModuloSchedule(g, unified_config(), ii=4)
    s.place(ScheduledOp(a, 0, 0, 0))
    s.place(ScheduledOp(b, 3, 0, 0))
    return s


class TestAcceptsValid:
    def test_simple_pair(self):
        verify_schedule(valid_unified_schedule())

    def test_cross_cluster_with_comm(self):
        g, a, b = simple_graph()
        cfg = two_cluster_config(n_buses=1, bus_latency=1)
        s = ModuloSchedule(g, cfg, ii=4)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(b, 4, 1, 0))
        s.add_comm(Communication(a, 0, 0, 3, frozenset({1})))
        verify_schedule(s)


class TestCompleteness:
    def test_missing_node(self):
        g, a, b = simple_graph()
        s = ModuloSchedule(g, unified_config(), ii=4)
        s.place(ScheduledOp(a, 0, 0, 0))
        with pytest.raises(VerificationError, match="incomplete"):
            verify_schedule(s)


class TestPlacementSanity:
    def test_bad_cluster(self):
        g, a, b = simple_graph()
        s = ModuloSchedule(g, unified_config(), ii=4)
        s.place(ScheduledOp(a, 0, 5, 0))
        s.place(ScheduledOp(b, 3, 0, 0))
        with pytest.raises(VerificationError, match="cluster"):
            verify_schedule(s)

    def test_bad_unit_index(self):
        g, a, b = simple_graph()
        s = ModuloSchedule(g, unified_config(), ii=4)
        s.place(ScheduledOp(a, 0, 0, 9))
        s.place(ScheduledOp(b, 3, 0, 0))
        with pytest.raises(VerificationError, match="unit"):
            verify_schedule(s)

    def test_negative_cycle(self):
        g, a, b = simple_graph()
        s = ModuloSchedule(g, unified_config(), ii=4)
        s.place(ScheduledOp(a, -4, 0, 0))
        s.place(ScheduledOp(b, 3, 0, 0))
        with pytest.raises(VerificationError, match="negative"):
            verify_schedule(s)


class TestResourceConflicts:
    def test_fu_conflict_same_row(self):
        g = DependenceGraph()
        a = g.add_operation("fadd")
        b = g.add_operation("fadd")
        s = ModuloSchedule(g, unified_config(), ii=2)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(b, 2, 0, 0))  # same row, same unit
        with pytest.raises(VerificationError, match="FU conflict"):
            verify_schedule(s)

    def test_different_units_ok(self):
        g = DependenceGraph()
        a = g.add_operation("fadd")
        b = g.add_operation("fadd")
        s = ModuloSchedule(g, unified_config(), ii=2)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(b, 2, 0, 1))
        verify_schedule(s)

    def test_bus_conflict(self):
        g = DependenceGraph()
        a = g.add_operation("fadd")
        b = g.add_operation("fadd")
        c = g.add_operation("fadd")
        d = g.add_operation("fadd")
        g.add_dependence(a, b)
        g.add_dependence(c, d)
        cfg = two_cluster_config(n_buses=1, bus_latency=2)
        s = ModuloSchedule(g, cfg, ii=4)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(c, 0, 0, 1))
        s.place(ScheduledOp(b, 9, 1, 0))
        s.place(ScheduledOp(d, 10, 1, 1))
        s.add_comm(Communication(a, 0, 0, 3, frozenset({1})))
        s.add_comm(Communication(c, 0, 0, 4, frozenset({1})))  # rows overlap
        with pytest.raises(VerificationError, match="bus conflict"):
            verify_schedule(s)

    def test_comm_longer_than_ii(self):
        g, a, b = simple_graph()
        cfg = two_cluster_config(n_buses=1, bus_latency=4)
        s = ModuloSchedule(g, cfg, ii=3)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(b, 8, 1, 0))
        s.add_comm(Communication(a, 0, 0, 3, frozenset({1})))
        with pytest.raises(VerificationError, match="collides with itself"):
            verify_schedule(s)


class TestDependences:
    def test_latency_violation(self):
        g, a, b = simple_graph()
        s = ModuloSchedule(g, unified_config(), ii=4)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(b, 1, 0, 1))  # fadd needs 3 cycles
        with pytest.raises(VerificationError, match="violated"):
            verify_schedule(s)

    def test_carried_distance_credits_ii(self):
        g = DependenceGraph()
        a = g.add_operation("fadd")
        b = g.add_operation("fadd")
        g.add_dependence(a, b, distance=1)
        s = ModuloSchedule(g, unified_config(), ii=4)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(b, 0, 0, 1))  # 0 + 4 >= 0 + 3 fine
        verify_schedule(s)

    def test_missing_communication(self):
        g, a, b = simple_graph()
        cfg = two_cluster_config()
        s = ModuloSchedule(g, cfg, ii=4)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(b, 4, 1, 0))
        with pytest.raises(VerificationError, match="no communication"):
            verify_schedule(s)

    def test_late_communication(self):
        g, a, b = simple_graph()
        cfg = two_cluster_config(n_buses=1, bus_latency=1)
        s = ModuloSchedule(g, cfg, ii=8)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(b, 4, 1, 0))
        s.add_comm(Communication(a, 0, 0, 6, frozenset({1})))  # arrives at 7 > 4
        with pytest.raises(VerificationError, match="no communication"):
            verify_schedule(s)

    def test_comm_before_production(self):
        g, a, b = simple_graph()
        cfg = two_cluster_config(n_buses=1, bus_latency=1)
        s = ModuloSchedule(g, cfg, ii=8)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(b, 4, 1, 0))
        s.add_comm(Communication(a, 0, 0, 1, frozenset({1})))  # result at 3
        with pytest.raises(VerificationError, match="before the result"):
            verify_schedule(s)

    def test_comm_from_wrong_cluster(self):
        g, a, b = simple_graph()
        cfg = two_cluster_config(n_buses=1, bus_latency=1)
        s = ModuloSchedule(g, cfg, ii=8)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(b, 5, 1, 0))
        s.add_comm(Communication(a, 1, 0, 4, frozenset({1})))
        with pytest.raises(VerificationError, match="source cluster"):
            verify_schedule(s)


class TestRegisterPressure:
    def test_pressure_violation_detected(self):
        from repro.arch.cluster import MachineConfig
        from repro.arch.resources import BusSpec, FuSet

        tiny = MachineConfig("tiny", 1, FuSet(4, 4, 4), 1, BusSpec(0, 1))
        g = DependenceGraph()
        p1 = g.add_operation("fadd")
        p2 = g.add_operation("fadd")
        c = g.add_operation("fadd")
        g.add_dependence(p1, c)
        g.add_dependence(p2, c)
        s = ModuloSchedule(g, tiny, ii=10)
        s.place(ScheduledOp(p1, 0, 0, 0))
        s.place(ScheduledOp(p2, 0, 0, 1))
        s.place(ScheduledOp(c, 3, 0, 2))
        with pytest.raises(VerificationError, match="registers"):
            verify_schedule(s)
