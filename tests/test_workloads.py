"""Tests for the kernels, the generator and the synthetic SPECfp95 suite."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mii import rec_mii
from repro.errors import GraphError
from repro.ir.loop import MIN_MODULO_TRIP_COUNT
from repro.ir.operation import FuClass
from repro.workloads.generator import LoopShape, RecurrenceSpec, generate_loop
from repro.workloads.kernels import ALL_KERNELS, figure7_graph, ladder_graph
from repro.workloads.specfp import PROGRAM_NAMES, build_program, specfp95_suite


class TestKernels:
    def test_all_kernels_validate(self):
        for name, build in ALL_KERNELS.items():
            g = build()
            g.validate()
            assert len(g) >= 2, name

    def test_kernels_are_fresh_instances(self):
        g1 = ALL_KERNELS["daxpy"]()
        g2 = ALL_KERNELS["daxpy"]()
        assert g1 is not g2

    def test_figure7_matches_paper_parameters(self):
        g = figure7_graph()
        assert len(g) == 6
        assert rec_mii(g) == 2

    def test_ladder_parameters(self):
        g = ladder_graph()
        assert len(g) == 12
        assert rec_mii(g) == 3


class TestGenerator:
    def shape(self, **kw):
        defaults = dict(name="t", seed=42, n_ops=30)
        defaults.update(kw)
        return LoopShape(**defaults)

    def test_deterministic(self):
        g1 = generate_loop(self.shape())
        g2 = generate_loop(self.shape())
        assert len(g1) == len(g2)
        assert [op.opcode.name for op in g1.operations()] == [
            op.opcode.name for op in g2.operations()
        ]
        assert [(d.src, d.dst, d.distance) for d in g1.edges] == [
            (d.src, d.dst, d.distance) for d in g2.edges
        ]

    def test_different_seeds_differ(self):
        g1 = generate_loop(self.shape(seed=1))
        g2 = generate_loop(self.shape(seed=2))
        sig1 = [(d.src, d.dst) for d in g1.edges]
        sig2 = [(d.src, d.dst) for d in g2.edges]
        assert sig1 != sig2

    def test_op_count_close_to_requested(self):
        g = generate_loop(self.shape(n_ops=40))
        assert 30 <= len(g) <= 50

    def test_long_range_prob_monotonic(self):
        """More long-range knob -> more long-range operand edges.

        Regression test for the knob gating the wrong branch: counts
        (averaged over seeds) must increase monotonically in the knob and
        be exactly zero when it is zero.
        """

        def long_edges(prob: float) -> int:
            total = 0
            for seed in range(10):
                shape = self.shape(seed=seed, n_ops=60, long_range_prob=prob)
                g = generate_loop(shape)
                # operands reaching further back than twice the locality
                # window can only come from the long-range draw
                total += sum(
                    1 for d in g.edges if d.dst - d.src > 2 * shape.locality_window
                )
            return total

        counts = [long_edges(p) for p in (0.0, 0.25, 0.5, 1.0)]
        assert counts[0] == 0
        assert counts == sorted(counts)
        assert counts[0] < counts[1] < counts[3]

    def test_mem_fraction_respected(self):
        g = generate_loop(self.shape(n_ops=60, mem_fraction=0.5))
        counts = g.op_count_by_class()
        mem = counts.get(FuClass.MEM, 0)
        assert 0.3 <= mem / len(g) <= 0.65

    def test_recurrences_create_cycles(self):
        g = generate_loop(
            self.shape(recurrences=(RecurrenceSpec(3, 1), RecurrenceSpec(2, 2)))
        )
        from repro.core.sms import recurrence_sets

        assert len(recurrence_sets(g)) == 2

    def test_rec_mii_reflects_recurrence(self):
        g = generate_loop(self.shape(recurrences=(RecurrenceSpec(4, 1),)))
        assert rec_mii(g) >= 4  # at least one cycle of >= 4 unit-latency ops

    def test_carried_edges_present(self):
        g = generate_loop(self.shape(n_ops=50, carried_edge_prob=0.5))
        assert any(d.distance > 0 for d in g.edges)

    def test_validation_errors(self):
        with pytest.raises(GraphError):
            LoopShape(name="bad", seed=1, n_ops=2)
        with pytest.raises(GraphError):
            LoopShape(name="bad", seed=1, n_ops=10, mem_fraction=1.5)
        with pytest.raises(GraphError):
            RecurrenceSpec(0, 1)
        with pytest.raises(GraphError):
            RecurrenceSpec(2, 0)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_ops=st.integers(min_value=5, max_value=60),
        mem=st.floats(min_value=0.1, max_value=0.6),
        fp=st.floats(min_value=0.0, max_value=1.0),
        carried=st.floats(min_value=0.0, max_value=0.3),
    )
    @settings(max_examples=60, deadline=None)
    def test_generated_graphs_always_valid(self, seed, n_ops, mem, fp, carried):
        shape = LoopShape(
            name="p",
            seed=seed,
            n_ops=n_ops,
            mem_fraction=mem,
            fp_fraction=fp,
            carried_edge_prob=carried,
            recurrences=(RecurrenceSpec(2, 1),) if seed % 3 == 0 else (),
        )
        g = generate_loop(shape)
        g.validate()  # raises on broken structure
        assert len(g) >= 3


class TestSpecfpSuite:
    def test_all_programs_present(self):
        suite = specfp95_suite()
        assert [p.name for p in suite] == list(PROGRAM_NAMES)

    def test_unknown_program_rejected(self):
        with pytest.raises(KeyError):
            build_program("gcc")

    def test_every_program_has_eligible_loops(self):
        for program in specfp95_suite():
            assert len(program.eligible_loops()) >= 3, program.name

    def test_loops_validate(self):
        for program in specfp95_suite():
            for loop in program.loops:
                loop.graph.validate()
                assert loop.trip_count > MIN_MODULO_TRIP_COUNT

    def test_deterministic_suite(self):
        s1 = specfp95_suite()
        s2 = specfp95_suite()
        for p1, p2 in zip(s1, s2):
            assert [len(lp.graph) for lp in p1.loops] == [
                len(lp.graph) for lp in p2.loops
            ]

    def test_program_character(self):
        """Spot-check the documented profiles."""
        fpppp = build_program("fpppp")
        sizes = [len(lp.graph) for lp in fpppp.loops]
        assert max(sizes) >= 60  # famous big bodies

        swim = build_program("swim")
        from repro.core.sms import recurrence_sets

        rec_loops = sum(
            1 for lp in swim.loops if recurrence_sets(lp.graph)
        )
        assert rec_loops == 0  # parallel stencils

        applu = build_program("applu")
        rec_loops = sum(1 for lp in applu.loops if recurrence_sets(lp.graph))
        assert rec_loops >= 4  # wavefront recurrences

    def test_dynamic_operation_weighting(self):
        prog = build_program("swim")
        assert prog.dynamic_operations > 0
        # weights count trip * runs * ops
        lp = prog.eligible_loops()[0]
        assert lp.dynamic_operations == (
            lp.ops_per_iteration * lp.trip_count * lp.times_executed
        )
