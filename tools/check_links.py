#!/usr/bin/env python3
"""Fail on broken intra-repo links in the repository's Markdown files.

Scans every ``*.md`` file (repo root, ``docs/``, and any other tracked
directory), extracts ``[text](target)`` links, and checks that every
relative target resolves to an existing file or directory.  External
links (``http(s)://``, ``mailto:``) and pure in-page anchors (``#…``)
are skipped; a ``path#fragment`` target is checked for the path part
only.

Used by the CI docs job::

    python tools/check_links.py

Exit status is non-zero if any link is broken, with one line per
offender.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline Markdown links: [text](target).  Deliberately simple — the
#: repo's docs do not use reference-style links or angle brackets.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Directories never scanned (caches, VCS internals, virtualenvs).
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules", ".venv"}


def iter_markdown_files(root: Path) -> list[Path]:
    """Every ``*.md`` file under *root*, skipping junk directories."""
    files = []
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        files.append(path)
    return files


def broken_links(md_file: Path) -> list[tuple[str, str]]:
    """The (target, reason) pairs of broken relative links in one file."""
    problems = []
    text = md_file.read_text(encoding="utf-8")
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):  # in-page anchor
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (md_file.parent / path_part).resolve()
        if not resolved.exists():
            problems.append((target, f"no such file: {resolved}"))
    return problems


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    failures = 0
    files = iter_markdown_files(root)
    for md_file in files:
        for target, reason in broken_links(md_file):
            print(f"{md_file.relative_to(root)}: broken link ({target}): {reason}")
            failures += 1
    print(
        f"checked {len(files)} markdown file(s): "
        f"{failures} broken link(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
