#!/usr/bin/env python3
"""Fail on broken intra-repo links and stale CLI verbs in Markdown files.

Two drift detectors over every ``*.md`` file (repo root, ``docs/``, and
any other tracked directory):

* **links** — extracts ``[text](target)`` links and checks that every
  relative target resolves to an existing file or directory.  External
  links (``http(s)://``, ``mailto:``) and pure in-page anchors (``#…``)
  are skipped; a ``path#fragment`` target is checked for the path part
  only.
* **CLI verbs** — every ``repro-vliw <subcommand>`` mention must name a
  subcommand actually registered in ``src/repro/cli.py`` (parsed from
  its ``add_parser`` calls), so the docs cannot drift as verbs are
  added or renamed.

Used by the CI docs job::

    python tools/check_links.py

Exit status is non-zero if anything is broken, with one line per
offender.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline Markdown links: [text](target).  Deliberately simple — the
#: repo's docs do not use reference-style links or angle brackets.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Directories never scanned (caches, VCS internals, virtualenvs).
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules", ".venv"}


def iter_markdown_files(root: Path) -> list[Path]:
    """Every ``*.md`` file under *root*, skipping junk directories."""
    files = []
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        files.append(path)
    return files


def broken_links(md_file: Path) -> list[tuple[str, str]]:
    """The (target, reason) pairs of broken relative links in one file."""
    problems = []
    text = md_file.read_text(encoding="utf-8")
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):  # in-page anchor
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (md_file.parent / path_part).resolve()
        if not resolved.exists():
            problems.append((target, f"no such file: {resolved}"))
    return problems


#: ``add_parser("name")`` registrations in cli.py — the ground truth of
#: which subcommands exist.
ADD_PARSER_RE = re.compile(r"""add_parser\(\s*["']([a-z0-9_-]+)["']""")

#: Subcommands registered through the figure loop in cli.py:
#: ``("fig8", cmd_fig8, True)`` tuples of (name, handler, has_quick).
LOOPED_PARSER_RE = re.compile(r"""\(\s*["']([a-z0-9_-]+)["']\s*,\s*cmd_\w+\s*,""")

#: ``repro-vliw <word>`` command mentions.  Only bare lowercase words
#: are candidate subcommands; flags (``--jobs``), placeholders
#: (``<command>``) and upper-case words (``KERNEL``, ``GRID``) are not
#: matched.
CLI_MENTION_RE = re.compile(r"repro-vliw\s+([a-z][a-z0-9_-]*)")

#: Fenced code blocks and inline code spans — the only places a
#: ``repro-vliw`` mention is a command line rather than prose ("the
#: repro-vliw package").
FENCED_RE = re.compile(r"```.*?```", re.S)
INLINE_CODE_RE = re.compile(r"`[^`\n]+`")


def registered_subcommands(root: Path) -> set[str]:
    """Subcommand names registered in ``src/repro/cli.py``."""
    cli_source = (root / "src" / "repro" / "cli.py").read_text(encoding="utf-8")
    return set(ADD_PARSER_RE.findall(cli_source)) | set(
        LOOPED_PARSER_RE.findall(cli_source)
    )


def cli_mentions(md_file: Path) -> list[str]:
    """Every ``repro-vliw <verb>`` inside a code block or code span."""
    text = md_file.read_text(encoding="utf-8")
    fenced = FENCED_RE.findall(text)
    inline = INLINE_CODE_RE.findall(FENCED_RE.sub("", text))
    code = "\n".join(fenced + inline)
    return CLI_MENTION_RE.findall(code)


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    failures = 0
    files = iter_markdown_files(root)
    known = registered_subcommands(root)
    mentions = 0
    for md_file in files:
        for target, reason in broken_links(md_file):
            print(f"{md_file.relative_to(root)}: broken link ({target}): {reason}")
            failures += 1
        verbs = cli_mentions(md_file)
        mentions += len(verbs)
        for verb in verbs:
            if verb in known:
                continue
            print(
                f"{md_file.relative_to(root)}: 'repro-vliw {verb}' names no "
                f"registered subcommand (known: {', '.join(sorted(known))})"
            )
            failures += 1
    print(
        f"checked {len(files)} markdown file(s), {mentions} CLI mention(s) "
        f"against {len(known)} registered subcommand(s): "
        f"{failures} problem(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
