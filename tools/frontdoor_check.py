#!/usr/bin/env python3
"""End-to-end check of the textual loop front door.

Drives the committed ``examples/loops`` corpus through both user-facing
entry points and cross-checks them:

* every good ``.loop`` file is scheduled via the CLI (``repro-vliw
  schedule FILE``) and via ``POST /schedule`` with the inline
  ``program`` payload, and the two rendered schedules must match byte
  for byte;
* every good file is simulated via the CLI and must converge (exit 0,
  no divergence note in the check line);
* every file under ``examples/loops/bad`` must be rejected with a
  ``source:line:col:`` parse error by the CLI, and with an HTTP 400
  carrying the same ``line:col`` marker by the service.

Run from the repository root::

    python tools/frontdoor_check.py
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
GOOD_DIR = ROOT / "examples" / "loops"
BAD_DIR = GOOD_DIR / "bad"
LINE_COL = re.compile(r":\d+:\d+:")

_failures: list[str] = []


def fail(message: str) -> None:
    _failures.append(message)
    print(f"FAIL {message}")


def ok(message: str) -> None:
    print(f"  ok {message}")


def run_cli(*args: str, cache: str) -> subprocess.CompletedProcess[str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_VLIW_CACHE"] = cache
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=ROOT,
    )


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    from repro.runner.cache import ResultCache
    from repro.service.client import ServiceClient
    from repro.service.core import SchedulingService
    from repro.service.server import ServiceServer

    good = sorted(GOOD_DIR.glob("*.loop"))
    bad = sorted(BAD_DIR.glob("*.loop"))
    if not good:
        fail(f"no good corpus files under {GOOD_DIR}")
    if not bad:
        fail(f"no negative corpus files under {BAD_DIR}")

    with tempfile.TemporaryDirectory(prefix="frontdoor-") as tmp:
        cli_cache = str(Path(tmp) / "cli-cache")
        service = SchedulingService(
            cache=ResultCache(Path(tmp) / "svc-cache", code_version="frontdoor"),
            workers=0,
        )
        server = ServiceServer(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(port=server.port, timeout=120.0)
        try:
            for path in good:
                rel = path.relative_to(ROOT)
                source = path.read_text()

                proc = run_cli("schedule", str(rel), cache=cli_cache)
                if proc.returncode != 0:
                    fail(f"{rel}: CLI schedule exited {proc.returncode}: "
                         f"{proc.stderr.strip()}")
                    continue
                ok(f"{rel}: CLI schedule")

                payload = client.schedule({"program": source}, wait=True)
                rendered = payload["result"]["rendered"]
                if rendered + "\n" != proc.stdout:
                    fail(f"{rel}: service rendering differs from CLI schedule")
                else:
                    ok(f"{rel}: service rendering byte-identical to CLI")

                proc = run_cli("simulate", str(rel), cache=cli_cache)
                if proc.returncode != 0:
                    fail(f"{rel}: CLI simulate exited {proc.returncode}: "
                         f"{proc.stderr.strip()}")
                elif "(divergence" in proc.stdout:
                    fail(f"{rel}: simulation diverged from the analytic model")
                else:
                    ok(f"{rel}: CLI simulate converged")

            for path in bad:
                rel = path.relative_to(ROOT)
                source = path.read_text()

                proc = run_cli("schedule", str(rel), cache=cli_cache)
                if proc.returncode == 0:
                    fail(f"{rel}: CLI accepted an invalid program")
                elif not LINE_COL.search(proc.stderr):
                    fail(f"{rel}: CLI error lacks a line:col marker: "
                         f"{proc.stderr.strip()}")
                else:
                    ok(f"{rel}: CLI rejected with line:col diagnostics")

                try:
                    client.schedule({"program": source}, wait=True)
                except Exception as exc:  # HTTP 400 surfaces as an error
                    if not LINE_COL.search(str(exc)):
                        fail(f"{rel}: service error lacks a line:col marker: "
                             f"{exc}")
                    else:
                        ok(f"{rel}: service rejected with line:col diagnostics")
                else:
                    fail(f"{rel}: service accepted an invalid program")
        finally:
            server.shutdown()

    if _failures:
        print(f"\nfrontdoor check FAILED ({len(_failures)} failure(s))")
        return 1
    print(f"\nfrontdoor check passed: {len(good)} good, {len(bad)} bad "
          "corpus files exercised via CLI and service")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
